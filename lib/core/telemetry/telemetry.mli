(** Solver telemetry: named monotonic counters, gauges, and wall-clock span
    timers for the tunneling → capacitive-network → transient pipeline.

    Every entry point is one branch away from a no-op while disabled, so
    the instrumentation stays permanently wired into the numeric kernels.
    [span] pushes its name onto a per-domain context stack; every counter,
    gauge or nested span recorded inside is keyed under the caller's path
    (e.g. ["transient/run/ode/rhs_eval"]), attributing work to the figure
    or experiment that asked for it.

    Domain-safety: each domain records into its own lock-free
    [Domain.DLS] sink. Worker domains spawned by the Sweep pool call
    {!flush_local} before joining, merging into a mutex-protected global
    accumulator; the read accessors see the merge of the global
    accumulator and the calling domain's local sink, so single-domain
    callers observe exactly serial semantics. *)

type span_stat = {
  calls : int;     (** number of completed span invocations *)
  total_s : float; (** summed wall-clock seconds across invocations *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  spans : (string * span_stat) list;
}
(** A sorted, point-in-time view of every recorded metric. *)

(** {1 Lifecycle} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded values (global accumulator and this domain's sink);
    the enabled flag is untouched. *)

val flush_local : unit -> unit
(** Merge this domain's local sink into the global accumulator and clear
    it — called by Sweep pool workers once per task, after draining. *)

val flush_count : unit -> int
(** Number of {!flush_local} calls in this process so far. The bench uses
    the delta across a [Sweep] call to assert telemetry is batched (one
    flush per participating worker, not one per chunk). *)

val absorb : snapshot -> unit
(** Merge a snapshot produced elsewhere (e.g. a [Shard] worker process)
    into the global accumulator under the same rules as {!flush_local}:
    counters and span stats add, gauges overwrite. No-op while
    disabled. *)

(** {1 Recording} *)

val count : ?n:int -> string -> unit
(** Increment a monotonic counter by [n] (default 1; non-positive [n] is
    ignored), keyed under the current span context. No-op while disabled. *)

val gauge : string -> float -> unit
(** Record a last-writer-wins value, keyed under the current context. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] and attributes everything recorded inside
    it to [context/name]. Exceptions propagate; the time still counts.
    Calls [f] untimed while disabled. *)

val context_prefix : unit -> string
(** The current joined span path ([""] at top level). *)

val with_context_prefix : string -> (unit -> 'a) -> 'a
(** Run with the span context forced to [prefix] — used by the Sweep pool
    so worker domains key their work exactly like the submitting domain. *)

(** {1 Reading} *)

val counter : string -> int
(** Exact-key counter lookup (0 if absent). *)

val counter_total : string -> int
(** Sum of every counter whose path is [name] or ends in ["/" ^ name] —
    e.g. ["ode/rhs_eval"] regardless of which span recorded it. *)

val span_stat : string -> span_stat option
val snapshot : unit -> snapshot

(** {1 Rendering} *)

val render_text : snapshot -> string
val render_json : snapshot -> string

val snapshot_of_json : string -> (snapshot, string) result
(** Parse the output of {!render_json} back (round-trip reader). *)
