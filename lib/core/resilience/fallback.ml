module Tel = Gnrflash_telemetry.Telemetry

type 'a rung = { name : string; attempt : unit -> ('a, Solver_error.t) result }

let rung name attempt = { name; attempt }

let stop_escalating (e : Solver_error.t) =
  match e.kind with
  | Solver_error.Budget_exhausted _ | Solver_error.Invalid_input _ -> true
  | _ -> false

let run rungs =
  if rungs = [] then invalid_arg "Fallback.run: empty ladder";
  let rec go idx = function
    | [] -> assert false
    | r :: rest -> (
      Tel.count "resilience/rung_attempt";
      match Solver_error.protect r.attempt with
      | Ok v ->
        if idx > 0 then begin
          Tel.count "resilience/fallback_used";
          Tel.count ("resilience/fallback_rung/" ^ r.name)
        end;
        Ok v
      | Error e ->
        Tel.count "resilience/rung_failed";
        if rest = [] || stop_escalating e then Error e else go (idx + 1) rest)
  in
  go 0 rungs
