(** Escalation ladders: try a primary solve strategy, then progressively
    cheaper/looser ones, recording which rung succeeded via Telemetry.

    Counters (under the caller's span context):
    - [resilience/rung_attempt] — every rung tried
    - [resilience/rung_failed] — rungs that returned [Error] (or raised
      [Solver_failure])
    - [resilience/fallback_used] — a rung other than the first succeeded
    - [resilience/fallback_rung/<name>] — which rung rescued the solve

    Escalation stops early on [Budget_exhausted] (trying a looser rung
    cannot un-exhaust the budget) and on [Invalid_input] (the call is
    ill-posed, not numerically unlucky). *)

type 'a rung

val rung : string -> (unit -> ('a, Solver_error.t) result) -> 'a rung
(** A named strategy. Raised [Solver_failure]s are caught and treated as
    that rung's [Error]. *)

val run : 'a rung list -> ('a, Solver_error.t) result
(** Try rungs in order, returning the first [Ok]. If every rung fails,
    returns the last rung's error. [run []] is invalid. *)
