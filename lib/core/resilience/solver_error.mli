(** Typed taxonomy for numeric-solver failures.

    Every root finder, integrator, and the device-layer solves built on them
    report failures as a {!t}: a machine-matchable [kind] carrying the last
    useful context (bracket, iteration count, step size), tagged with the
    solver that raised it. {!to_string} renders the same
    ["Solver.name: message"] shape the old stringly-typed errors used, so
    CLI and report output is unchanged. *)

type kind =
  | Invalid_input of string
      (** ill-posed call (non-positive duration, empty interval, ...) *)
  | Bracket_failure of { lo : float; hi : float; f_lo : float; f_hi : float }
      (** no sign change across the (possibly expanded) bracket *)
  | No_convergence of { iterations : int; best : float; f_best : float }
      (** iteration cap hit before the tolerance was met; [best] is the
          last (best) iterate rather than a silently-returned "root" *)
  | Zero_derivative of { x : float }
      (** Newton/secant step undefined (flat function) *)
  | Nan_region of { at : float }
      (** the iteration entered a region where the function is not finite
          and could not step out of it *)
  | Step_underflow of { t : float; h : float }
      (** adaptive step size shrank below [h_min] at time [t] *)
  | Max_steps of { steps : int; t : float }
      (** integrator step cap hit before reaching the horizon *)
  | Budget_exhausted of { evals : int; elapsed_s : float }
      (** the cooperative {!Budget} (wall clock and/or eval cap) ran out *)
  | Fault_injected of { eval : int }
      (** deterministic test fault from {!Fault} (never in production) *)
  | Worker_failed of { shard : int; detail : string }
      (** a multi-process sweep shard died or returned a malformed frame
          (see [Shard] in [gnrflash_parallel]); [detail] carries the wait
          status or framing error *)

type t = {
  solver : string;  (** e.g. ["Roots.brent"], ["Transient.run"] *)
  kind : kind;
}

val make : solver:string -> kind -> t

exception Solver_failure of t
(** Escape hatch for solvers that cannot return a [result] (quadrature,
    fault injection deep in an RHS). Public result-returning entry points
    catch it via {!protect} so it never leaks to callers. *)

val fail : solver:string -> kind -> 'a
(** [fail ~solver kind] raises {!Solver_failure}. *)

val protect : (unit -> ('a, t) result) -> ('a, t) result
(** Run a thunk, converting an escaping {!Solver_failure} into [Error]. *)

val label : t -> string
(** Short machine-friendly class tag ("bracket_failure", "budget_exhausted",
    ...) — the key used by {!Gnrflash_device.Variation} failure counts. *)

val kind_label : kind -> string

val to_string : t -> string
(** ["<solver>: <message>"], the shape the CLI and reports print. *)
