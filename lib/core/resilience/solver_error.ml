type kind =
  | Invalid_input of string
  | Bracket_failure of { lo : float; hi : float; f_lo : float; f_hi : float }
  | No_convergence of { iterations : int; best : float; f_best : float }
  | Zero_derivative of { x : float }
  | Nan_region of { at : float }
  | Step_underflow of { t : float; h : float }
  | Max_steps of { steps : int; t : float }
  | Budget_exhausted of { evals : int; elapsed_s : float }
  | Fault_injected of { eval : int }
  | Worker_failed of { shard : int; detail : string }

type t = { solver : string; kind : kind }

let make ~solver kind = { solver; kind }

exception Solver_failure of t

let fail ~solver kind = raise (Solver_failure { solver; kind })

let protect f = try f () with Solver_failure e -> Error e

let kind_label = function
  | Invalid_input _ -> "invalid_input"
  | Bracket_failure _ -> "bracket_failure"
  | No_convergence _ -> "no_convergence"
  | Zero_derivative _ -> "zero_derivative"
  | Nan_region _ -> "nan_region"
  | Step_underflow _ -> "step_underflow"
  | Max_steps _ -> "max_steps"
  | Budget_exhausted _ -> "budget_exhausted"
  | Fault_injected _ -> "fault_injected"
  | Worker_failed _ -> "worker_failed"

let label e = kind_label e.kind

let message = function
  | Invalid_input msg -> msg
  | Bracket_failure { lo; hi; f_lo; f_hi } ->
    Printf.sprintf "no sign change on bracket [%g, %g] (f: %g, %g)" lo hi f_lo
      f_hi
  | No_convergence { iterations; best; f_best } ->
    Printf.sprintf "no convergence after %d iterations (best x = %g, f = %g)"
      iterations best f_best
  | Zero_derivative { x } -> Printf.sprintf "zero derivative at x = %g" x
  | Nan_region { at } -> Printf.sprintf "non-finite function value at %g" at
  | Step_underflow { t; h } ->
    Printf.sprintf "step size underflow at t = %g (h = %g)" t h
  | Max_steps { steps; t } ->
    Printf.sprintf "max steps (%d) exceeded at t = %g" steps t
  | Budget_exhausted { evals; elapsed_s } ->
    Printf.sprintf "budget exhausted after %d evals / %.3f s" evals elapsed_s
  | Fault_injected { eval } -> Printf.sprintf "injected fault at eval %d" eval
  | Worker_failed { shard; detail } ->
    Printf.sprintf "shard %d worker failed: %s" shard detail

let to_string e = e.solver ^ ": " ^ message e.kind
