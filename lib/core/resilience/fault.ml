module Tel = Gnrflash_telemetry.Telemetry
module Splitmix = Gnrflash_prng.Splitmix

type mode = Fail_every of int | Nan_every of int

type plan = {
  mode : mode;
  seed : int;
  limit : int option;
  mutable evals : int;
  mutable fired : int;
}

let slot : plan option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_faults ?(seed = 0) ?limit mode f =
  (match mode with
  | Fail_every n | Nan_every n ->
    if n < 1 then invalid_arg "Fault.with_faults: rate < 1");
  let prev = Domain.DLS.get slot in
  Domain.DLS.set slot (Some { mode; seed; limit; evals = 0; fired = 0 });
  Fun.protect ~finally:(fun () -> Domain.DLS.set slot prev) f

let injected () =
  match Domain.DLS.get slot with None -> 0 | Some p -> p.fired

let active () = Option.is_some (Domain.DLS.get slot)

let outcome () =
  match Domain.DLS.get slot with
  | None -> `Pass
  | Some p ->
    let i = p.evals in
    p.evals <- i + 1;
    let capped =
      match p.limit with Some l -> p.fired >= l | None -> false
    in
    if capped then `Pass
    else
      let rate = match p.mode with Fail_every n | Nan_every n -> n in
      let h = Splitmix.hash ~seed:p.seed ~index:i in
      if h mod rate <> 0 then `Pass
      else begin
        p.fired <- p.fired + 1;
        Tel.count "resilience/fault_injected";
        match p.mode with Fail_every _ -> `Fail i | Nan_every _ -> `Nan
      end
