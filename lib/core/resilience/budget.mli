(** Cooperative solver budgets: a wall-clock deadline and/or a cap on
    function evaluations, checked at iteration/step boundaries.

    A budget is installed for a dynamic extent with {!with_budget} (it lives
    in a process-global slot, so it is visible to solver code regardless of
    call depth — including [Sweep] worker domains, which
    share the slot). Solvers report work via {!note_evals} and poll
    {!check} / {!check_exn}; exceeding the budget yields
    [Solver_error.Budget_exhausted]. With no budget installed every check
    passes and the overhead is one atomic load. *)

type t

val make : ?wall_ms:float -> ?max_evals:int -> unit -> t
(** [make ~wall_ms ~max_evals ()] starts the wall clock now. Omitted limits
    are unconstrained. *)

val evals : t -> int
(** Function evaluations charged so far. *)

val elapsed_s : t -> float

val exhausted : t -> bool

val with_budget : t -> (unit -> 'a) -> 'a
(** Install [t] as the ambient budget for the thunk (restoring the previous
    one afterwards, exception-safe). *)

val with_opt : t option -> (unit -> 'a) -> 'a
(** [with_opt None f] runs [f] with the ambient budget untouched. *)

val current : unit -> t option

val note_evals : int -> unit
(** Charge n evaluations against the ambient budget (no-op without one). *)

val check : solver:string -> unit -> (unit, Solver_error.t) result
(** Poll the ambient budget. On exhaustion returns
    [Error (Budget_exhausted ...)] and bumps the
    [resilience/budget_exhausted] telemetry counter. *)

val check_exn : solver:string -> unit -> unit
(** Like {!check} but raises [Solver_error.Solver_failure] — for solvers
    that cannot return a [result] mid-iteration (e.g. quadrature). *)
