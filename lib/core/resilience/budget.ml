module Tel = Gnrflash_telemetry.Telemetry

type t = {
  deadline : float option; (* absolute Unix time, or None *)
  max_evals : int option;
  evals : int Atomic.t;
  started : float;
}

(* lint: allow L9 — the wall-clock budget is intentionally nondeterministic
   in *when* it trips, but exhaustion surfaces as a typed Budget_exhausted
   error, never as a silently different numeric result *)
let now () = Unix.gettimeofday ()

let make ?wall_ms ?max_evals () =
  let started = now () in
  {
    deadline = Option.map (fun ms -> started +. (ms /. 1000.)) wall_ms;
    max_evals;
    evals = Atomic.make 0;
    started;
  }

let evals t = Atomic.get t.evals
let elapsed_s t = now () -. t.started

let exhausted t =
  (match t.max_evals with
  | Some cap -> Atomic.get t.evals > cap
  | None -> false)
  ||
  match t.deadline with Some d -> now () > d | None -> false

(* Process-global so the ambient budget crosses library boundaries and is
   visible from Sweep worker domains without any per-domain plumbing. *)
let slot : t option Atomic.t = Atomic.make None

let with_budget t f =
  let prev = Atomic.get slot in
  Atomic.set slot (Some t);
  Fun.protect ~finally:(fun () -> Atomic.set slot prev) f

let with_opt opt f =
  match opt with None -> f () | Some t -> with_budget t f

let current () = Atomic.get slot

let note_evals n =
  match Atomic.get slot with
  | None -> ()
  | Some t -> ignore (Atomic.fetch_and_add t.evals n)

let error t ~solver =
  Tel.count "resilience/budget_exhausted";
  Solver_error.make ~solver
    (Solver_error.Budget_exhausted
       { evals = Atomic.get t.evals; elapsed_s = elapsed_s t })

let check ~solver () =
  match Atomic.get slot with
  | None -> Ok ()
  | Some t -> if exhausted t then Error (error t ~solver) else Ok ()

let check_exn ~solver () =
  match Atomic.get slot with
  | None -> ()
  | Some t ->
    if exhausted t then raise (Solver_error.Solver_failure (error t ~solver))
