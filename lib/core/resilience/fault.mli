(** Deterministic fault injection for exercising solver degradation paths.

    Tests install a fault plan with {!with_faults}; instrumented evaluation
    sites (root-finder function evals, ODE right-hand sides) poll
    {!outcome} and either pass through, return a NaN-poisoned value, or
    raise a typed [Fault_injected] failure. Which evals fault is decided by
    hashing the eval index with [Splitmix.hash], so a plan with rate [n]
    faults a pseudo-random ~1/n of evals — deterministically for a fixed
    seed, independent of chunking or domain count, and (unlike a literal
    "every Nth eval" rule) without guaranteeing that every retry re-faults
    at the same relative position. An optional [limit] stops injecting
    after that many faults so a fallback ladder's later rungs run clean.

    Fault state is domain-local: faults only fire on the domain that
    installed them. Production code never installs faults; without a plan
    {!outcome} is a single DLS load. *)

type mode =
  | Fail_every of int  (** raise [Fault_injected] on ~1/n of evals *)
  | Nan_every of int  (** return NaN from ~1/n of evals *)

val with_faults : ?seed:int -> ?limit:int -> mode -> (unit -> 'a) -> 'a
(** Install a fault plan for the dynamic extent of the thunk (restores the
    previous plan afterwards, exception-safe). [seed] defaults to 0. *)

val outcome : unit -> [ `Pass | `Nan | `Fail of int ]
(** Called by instrumented eval sites. [`Fail i] means the site should
    raise [Solver_error.Fault_injected { eval = i }]; [`Nan] means it
    should return [Float.nan]. Bumps [resilience/fault_injected] whenever
    a fault fires. *)

val injected : unit -> int
(** Faults fired by the current plan so far (0 without a plan). *)

val active : unit -> bool
(** Whether a fault plan is installed on this domain. Memoization layers
    (e.g. the {!Gnrflash_device.Program_erase} warm-replay cache) consult
    this to bypass both lookup and store under fault injection, so a
    poisoned or fault-shortened solve is never replayed as a clean one —
    and a cached clean outcome never masks the fault path under test. *)
