(** Extension experiments beyond the paper's figures: the ablations and
    optimization study its conclusion/future-work section calls for
    (experiment ids Ext A–F in DESIGN.md). *)

(** {1 Ext A: model accuracy} *)

val model_comparison :
  ?fields_mv_cm:float array -> unit -> (string * (float * float) array) list
(** Current density vs field for each transmission model (FN closed form,
    Tsu–Esaki over WKB / transfer-matrix / exact-Airy transmission), at the
    paper's barrier. Returns [(model, [(E in MV/cm, J in A/cm²)])]. *)

val model_figure : unit -> Gnrflash_plot.Figure.t
(** {!model_comparison} as a semilog figure. *)

(** {1 Ext B: design-space optimization} *)

type design_point = {
  gcr : float;
  xto_nm : float;
  program_time : float;    (** time to ΔVT = 2 V at VGS = 15 V [s] *)
  peak_field : float;      (** peak tunnel-oxide field [V/m] *)
  endurance : float;       (** predicted cycles to breakdown *)
  feasible : bool;         (** peak field below oxide breakdown *)
}

val evaluate_design : gcr:float -> xto_nm:float -> design_point
(** Evaluate one (GCR, XTO) candidate. *)

val optimize_design :
  ?gcr_range:(float * float) -> ?xto_range_nm:(float * float) -> unit ->
  design_point * design_point list
(** Grid-scan the design rectangle and return the fastest feasible design
    that still sustains ≥ 10⁴ predicted cycles, plus all evaluated
    points. *)

(** {1 Ext C: retention} *)

val retention_curve :
  ?dvt0:float -> unit -> Gnrflash_plot.Figure.t * float
(** Remaining threshold shift vs log-time from 1 ms to 10 years for a cell
    programmed to [dvt0] (default 2 V), and the 10-year charge-loss
    percentage. *)

(** {1 Ext D: endurance} *)

val endurance_curve :
  ?cycles:int -> ?surrogate:bool -> unit -> Gnrflash_plot.Figure.t * int
(** Program/erase window vs cycle count, and the number of cycles
    survived. [surrogate] (default on) is threaded through to the
    per-pulse {!Gnrflash_device.Pulse_surrogate} serving path. *)

type endurance_ensemble_summary = {
  cells : int;
  survived_all : int;    (** cells that completed the full cycle budget *)
  cycles_min : int;
  cycles_median : int;
  cycles_max : int;
}

val endurance_ensemble :
  ?cells:int -> ?cycles:int -> ?seed:int -> ?surrogate:bool ->
  ?jobs:int -> ?shards:int -> unit -> endurance_ensemble_summary
(** Cycle an ensemble of [cells] (default 16) variation-perturbed devices
    for up to [cycles] (default 1000) program/erase cycles each and
    summarize the survival distribution. Cell [i]'s device comes from
    {!Gnrflash_device.Variation.perturbed}[ ~seed ~index:i], so the
    ensemble is identical for every [jobs] (in-process domains) and
    [shards] (forked worker processes) setting — this is the
    fleet-scale-endurance entry point behind the CLI's
    [endurance --ensemble N --shards S].
    @raise Invalid_argument if [cells < 1]. *)

(** {1 Ext E: quantum-capacitance correction} *)

val qcap_comparison : layers:int list -> (int * float * float) list
(** For each MLGNR layer count: [(layers, GCR without correction, effective
    GCR with the stack's quantum capacitance in series)]. Fewer layers →
    smaller Cq → larger GCR reduction. *)

val qcap_jv_figure : unit -> Gnrflash_plot.Figure.t
(** Programming J–V with and without the quantum-capacitance correction
    for a 1-layer and a 5-layer floating gate. *)

(** {1 Ext F: NAND block demo} *)

type nand_summary = {
  pages_written : int;
  verify_failures : int;
  disturb_dvt_max : float;   (** worst threshold drift on inhibited cells [V] *)
  mean_pulses : float;       (** average ISPP pulses per programmed page *)
}

val nand_page_demo : ?pages:int -> ?strings:int -> unit -> (nand_summary, string) result
(** Program a checkerboard pattern across a small block through the
    controller and report verify/disturb statistics. *)

(** {1 Ext K: retention after cycling} *)

val retention_after_cycling :
  ?cycles_list:int list -> unit -> (int * float * float) list
(** For each P/E cycle count: [(cycles, trap density 1/m², 10-year
    leakage-current multiplier)]. Cycling generates oxide traps (via the
    reliability model); traps open the SILC path that multiplies the
    low-field leakage — the standard post-cycling retention failure. *)

(** {1 Ext L: MLC error budget} *)

val mlc_error_budget : ?sigma_list:float list -> unit -> Gnrflash_memory.Ber.analysis list
(** The BER pipeline evaluated over a range of threshold-placement spreads
    (default 0.05…0.6 V), plus the implied maximum tolerable spread. *)

(** {1 Ext M: temperature bake} *)

val bake_test :
  ?temps:float list -> ?dvt0:float -> unit ->
  (float * float) list * float
(** Retention bake: for each temperature [K] (default 300/358/398/438 K —
    25/85/125/165 °C), the time [s] for a [dvt0]-programmed cell (default
    2 V) to lose 20 % of its charge; plus the activation energy [eV]
    extracted from the Arrhenius plot [ln t vs 1/kT] by least squares.
    Tests pin the extracted Ea against the retention model's built-in
    0.3 eV. *)

(** {1 Ext N: ID-VG read window} *)

val id_vg_figure : ?dvt_programmed:float -> unit -> Gnrflash_plot.Figure.t
(** Transfer curves of the read transistor in the erased and programmed
    states (semilog-y) — the window a sense amplifier discriminates. *)
