module Plot = Gnrflash_plot
module D = Gnrflash_device
module Q = Gnrflash_quantum
module U = Gnrflash_physics.Units
module Grid = Gnrflash_numerics.Grid

(* equation (3) with QFG = 0, then equation (7): E = |VFG|/XTO *)
let jv_point ~fn ~polarity ~gcr ~xto vgs =
  let vfg = gcr *. vgs in
  let v_drop = match polarity with `Program -> vfg | `Erase -> -.vfg in
  let j =
    if v_drop <= 0. then 0. else Q.Fn.current_density fn ~field:(v_drop /. xto)
  in
  (vgs, U.to_a_per_cm2 j)

let jv_sweep_gcr ~polarity ~gcr ~xto_nm ~vgs_range ~points =
  let fn = Params.fn () in
  let xto = U.nm xto_nm in
  let v0, v1 = vgs_range in
  let vgs_grid = Grid.linspace v0 v1 points in
  Sweep.map (jv_point ~fn ~polarity ~gcr ~xto) vgs_grid

let fig2_band_diagram () =
  let phi_j = U.ev_to_joule Params.phi_b_ev in
  let m_eff = Params.m_ox_rel *. Gnrflash_physics.Constants.m0 in
  let profile ?(image = false) ~label field =
    let b = Q.Barrier.triangular ~phi_b:phi_j ~field ~m_eff in
    let b = if image then Q.Barrier.with_image_force ~eps_r:3.9 b else b in
    let xs = Grid.linspace 0. (Q.Barrier.width b) 120 in
    Plot.Series.make ~label
      (Array.map (fun x -> (U.to_nm x, U.joule_to_ev (Q.Barrier.height_at b x))) xs)
  in
  Plot.Figure.make ~title:"Fig 2: FN triangular barrier (band diagram)"
    ~xlabel:"position in oxide [nm]" ~ylabel:"barrier energy above EF [eV]"
    [
      profile ~label:"E = 5 MV/cm" (U.mv_per_cm 5.);
      profile ~label:"E = 10 MV/cm" (U.mv_per_cm 10.);
      profile ~label:"E = 15 MV/cm" (U.mv_per_cm 15.);
      profile ~image:true ~label:"E = 10 MV/cm + image force" (U.mv_per_cm 10.);
    ]

let transient_series () =
  let t = Params.device () in
  match D.Transient.run t ~vgs:Params.vgs_program ~duration:10. with
  | Error e ->
    failwith
      ("figures: transient failed: "
       ^ Gnrflash_resilience.Solver_error.to_string e)
  | Ok r -> r

let fig4_initial_currents () =
  let r = transient_series () in
  let early =
    Array.to_list r.D.Transient.samples
    |> List.filter (fun s -> s.D.Transient.time <= 1e-6)
  in
  let pick f =
    Array.of_list
      (List.filter_map
         (fun s ->
            let j = f s in
            if j > 0. && s.D.Transient.time > 0. then
              Some (s.D.Transient.time, U.to_a_per_cm2 j)
            else None)
         early)
  in
  let jin0, jout0 =
    match r.D.Transient.samples with
    | [||] -> (0., 0.)
    | samples -> (samples.(0).D.Transient.j_in, samples.(0).D.Transient.j_out)
  in
  let fig =
    Plot.Figure.make
      ~title:"Fig 4: Jin vs Jout at the start of programming (VGS=15V, GCR=0.6)"
      ~xlabel:"time [s]" ~ylabel:"J [A/cm^2]" ~xscale:Plot.Scale.Log10
      ~yscale:Plot.Scale.Log10
      [
        Plot.Series.make ~label:"Jin (channel -> FG)"
          (pick (fun s -> s.D.Transient.j_in));
        Plot.Series.make ~label:"Jout (FG -> control gate)"
          (pick (fun s -> s.D.Transient.j_out));
      ]
  in
  (fig, (U.to_a_per_cm2 jin0, U.to_a_per_cm2 jout0))

let fig5_transient () =
  let r = transient_series () in
  let pick f =
    Array.of_list
      (List.filter_map
         (fun s ->
            let j = f s in
            if j > 0. && s.D.Transient.time > 0. then
              Some (s.D.Transient.time, U.to_a_per_cm2 j)
            else None)
         (Array.to_list r.D.Transient.samples))
  in
  let fig =
    Plot.Figure.make ~title:"Fig 5: tunneling currents vs time (to tsat)"
      ~xlabel:"time [s]" ~ylabel:"J [A/cm^2]" ~xscale:Plot.Scale.Log10
      ~yscale:Plot.Scale.Log10
      [
        Plot.Series.make ~label:"Jin" (pick (fun s -> s.D.Transient.j_in));
        Plot.Series.make ~label:"Jout" (pick (fun s -> s.D.Transient.j_out));
      ]
  in
  (fig, r.D.Transient.tsat)

(* The Fig 6-9 families are full (parameter, VGS) Cartesian grids; Sweep.grid
   flattens them into one work queue so the domains load-balance across the
   whole surface rather than series by series. *)
let family_figure ~title ~label ~vgs_range ~params ~point =
  let fn = Params.fn () in
  let v0, v1 = vgs_range in
  let vgs_grid = Grid.linspace v0 v1 Params.sweep_points in
  let rows = Sweep.grid (point ~fn) ~outer:(Array.of_list params) ~inner:vgs_grid in
  let series =
    List.mapi (fun i p -> Plot.Series.make ~label:(label p) rows.(i)) params
  in
  Plot.Figure.make ~title ~xlabel:"VGS [V]" ~ylabel:"JFN [A/cm^2]"
    ~yscale:Plot.Scale.Log10 series

let gcr_family ~polarity ~vgs_range ~title =
  family_figure ~title ~vgs_range
    ~label:(fun gcr -> Printf.sprintf "GCR = %.0f%%" (gcr *. 100.))
    ~params:Params.gcr_values
    ~point:(fun ~fn gcr vgs ->
        jv_point ~fn ~polarity ~gcr ~xto:(U.nm Params.xto_default_nm) vgs)

let xto_family ~polarity ~vgs_range ~title =
  family_figure ~title ~vgs_range
    ~label:(fun xto_nm -> Printf.sprintf "XTO = %.0f nm" xto_nm)
    ~params:Params.xto_values_nm
    ~point:(fun ~fn xto_nm vgs ->
        jv_point ~fn ~polarity ~gcr:Params.gcr_default ~xto:(U.nm xto_nm) vgs)

let fig6_program_gcr () =
  gcr_family ~polarity:`Program ~vgs_range:Params.vgs_program_range
    ~title:"Fig 6 [Program]: JFN vs VGS for four GCR (XTO=5nm)"

let fig7_program_xto () =
  xto_family ~polarity:`Program ~vgs_range:Params.vgs_program_range_xto
    ~title:"Fig 7 [Program]: JFN vs VGS for five XTO (GCR=60%)"

let fig8_erase_gcr () =
  gcr_family ~polarity:`Erase ~vgs_range:Params.vgs_erase_range
    ~title:"Fig 8 [Erase]: JFN vs VGS for four GCR (XTO=5nm)"

let fig9_erase_xto () =
  xto_family ~polarity:`Erase ~vgs_range:Params.vgs_erase_range
    ~title:"Fig 9 [Erase]: JFN vs VGS for five XTO (GCR=60%)"

let all () =
  [
    ("fig2", fig2_band_diagram ());
    ("fig4", fst (fig4_initial_currents ()));
    ("fig5", fst (fig5_transient ()));
    ("fig6", fig6_program_gcr ());
    ("fig7", fig7_program_xto ());
    ("fig8", fig8_erase_gcr ());
    ("fig9", fig9_erase_xto ());
  ]
