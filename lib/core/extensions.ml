module Plot = Gnrflash_plot
module D = Gnrflash_device
module Q = Gnrflash_quantum
module M = Gnrflash_memory
module Mat = Gnrflash_materials
module U = Gnrflash_physics.Units
module C = Gnrflash_physics.Constants
module Grid = Gnrflash_numerics.Grid
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error

(* ---------- Ext A: model accuracy ---------- *)

let default_fields = Grid.linspace 6. 18. 13

let model_comparison ?(fields_mv_cm = default_fields) () =
  let phi_b = U.ev_to_joule Params.phi_b_ev in
  let m_b = Params.m_ox_rel *. C.m0 in
  let thickness = U.nm Params.xto_default_nm in
  let ef = U.ev_to_joule 0.1 in
  let fn = Params.fn () in
  let models =
    [
      ("fn-closed-form", fun field -> Q.Fn.current_density fn ~field);
      ( "tsu-esaki/wkb",
        fun field ->
          Q.Tsu_esaki.current_density ~model:Q.Tsu_esaki.Wkb_model ~phi_b ~field
            ~thickness ~m_b ~ef () );
      ( "tsu-esaki/tmm",
        fun field ->
          Q.Tsu_esaki.current_density ~model:(Q.Tsu_esaki.Transfer_matrix_model 300)
            ~phi_b ~field ~thickness ~m_b ~ef () );
      ( "tsu-esaki/exact-airy",
        fun field ->
          Q.Tsu_esaki.current_density ~model:Q.Tsu_esaki.Exact_airy ~phi_b ~field
            ~thickness ~m_b ~ef () );
    ]
  in
  (* (model, field) product; the Tsu-Esaki integrals dominate, so balance
     them across domains rather than model by model *)
  let rows =
    Sweep.grid
      (fun (_, j_of) e_mv -> (e_mv, U.to_a_per_cm2 (j_of (U.mv_per_cm e_mv))))
      ~outer:(Array.of_list models) ~inner:fields_mv_cm
  in
  List.mapi (fun i (name, _) -> (name, rows.(i))) models

let model_figure () =
  let rows = model_comparison () in
  Plot.Figure.make ~title:"Ext A: JFN model comparison (phi_B=3.2eV, 5nm oxide)"
    ~xlabel:"oxide field [MV/cm]" ~ylabel:"J [A/cm^2]" ~yscale:Plot.Scale.Log10
    (List.map (fun (name, pts) -> Plot.Series.make ~label:name pts) rows)

(* ---------- Ext B: design-space optimization ---------- *)

type design_point = {
  gcr : float;
  xto_nm : float;
  program_time : float;
  peak_field : float;
  endurance : float;
  feasible : bool;
}

let evaluate_design ~gcr ~xto_nm =
  let base = Params.device () in
  let t = D.Fgt.with_xto (D.Fgt.with_gcr base gcr) (U.nm xto_nm) in
  let vgs = Params.vgs_program in
  let peak_field = D.Fgt.tunnel_field t ~vgs ~qfg:0. in
  let program_time =
    match D.Transient.time_to_threshold_shift t ~vgs ~dvt:2.0 ~max_time:1.0 with
    | Ok (Some time) -> time
    | Ok None -> infinity
    | Error e ->
      Tel.count ("extensions/program_time_fallback/" ^ Err.label e);
      infinity
  in
  let endurance = M.Endurance.predicted_endurance t ~vgs in
  let breakdown = Mat.Oxide.sio2.Mat.Oxide.breakdown_field in
  {
    gcr;
    xto_nm;
    program_time;
    peak_field;
    endurance;
    feasible = peak_field < breakdown && Float.is_finite program_time;
  }

let optimize_design ?(gcr_range = (0.45, 0.7)) ?(xto_range_nm = (4., 9.)) () =
  let g0, g1 = gcr_range and x0, x1 = xto_range_nm in
  let gcrs = Grid.linspace g0 g1 6 in
  let xtos = Grid.linspace x0 x1 6 in
  (* the full 6x6 design surface as one flat domain-parallel work queue *)
  let points =
    Sweep.grid (fun gcr xto_nm -> evaluate_design ~gcr ~xto_nm) ~outer:gcrs ~inner:xtos
    |> Array.to_list
    |> List.concat_map Array.to_list
  in
  let viable =
    List.filter (fun p -> p.feasible && p.endurance >= 1e4) points
  in
  let best =
    match viable with
    | [] ->
      (* fall back to the fastest feasible point regardless of endurance *)
      List.fold_left
        (fun acc p -> if p.program_time < acc.program_time then p else acc)
        (List.hd points) points
    | hd :: tl ->
      List.fold_left
        (fun acc p -> if p.program_time < acc.program_time then p else acc)
        hd tl
  in
  (best, points)

(* ---------- Ext C: retention ---------- *)

let retention_curve ?(dvt0 = 2.0) () =
  let t = Params.device () in
  let qfg0 = D.Fgt.qfg_for_threshold_shift t ~dvt:dvt0 in
  let ten_years = U.years 10. in
  let samples = D.Retention.simulate t ~qfg0 ~t_start:1e-3 ~t_end:ten_years in
  let series =
    Plot.Series.make ~label:(Printf.sprintf "dVT0 = %.1f V" dvt0)
      (Array.map (fun s -> (s.D.Retention.time, s.D.Retention.dvt)) samples)
  in
  let fig =
    Plot.Figure.make ~title:"Ext C: retention (threshold shift vs time)"
      ~xlabel:"time [s]" ~ylabel:"remaining dVT [V]" ~xscale:Plot.Scale.Log10
      [ series ]
  in
  (fig, D.Retention.charge_loss_percent t ~qfg0 ~after:ten_years)

(* ---------- Ext D: endurance ---------- *)

let endurance_curve ?(cycles = 10_000) ?surrogate () =
  let t = Params.device () in
  let short_pulse v = { D.Program_erase.vgs = v; duration = 100e-6 } in
  let run =
    M.Endurance.cycle_cell ~program_pulse:(short_pulse 15.)
      ~erase_pulse:(short_pulse (-15.)) ?surrogate t ~cycles
  in
  let pts label f =
    Plot.Series.make ~label
      (Array.of_list
         (List.map (fun s -> (float_of_int s.M.Endurance.cycle, f s)) run.M.Endurance.samples))
  in
  let fig =
    Plot.Figure.make ~title:"Ext D: P/E window vs cycling" ~xlabel:"cycles"
      ~ylabel:"VT [V]" ~xscale:Plot.Scale.Log10
      [
        pts "VT programmed" (fun s -> s.M.Endurance.vt_programmed);
        pts "VT erased" (fun s -> s.M.Endurance.vt_erased);
        pts "window" (fun s -> s.M.Endurance.window);
      ]
  in
  (fig, run.M.Endurance.cycles_survived)

type endurance_ensemble_summary = {
  cells : int;
  survived_all : int;
  cycles_min : int;
  cycles_median : int;
  cycles_max : int;
}

let endurance_ensemble ?(cells = 16) ?(cycles = 1_000) ?(seed = 2014)
    ?surrogate ?jobs ?shards () =
  if cells < 1 then invalid_arg "Extensions.endurance_ensemble: cells < 1";
  let base = Params.device () in
  let short_pulse v = { D.Program_erase.vgs = v; duration = 100e-6 } in
  (* cell [index] cycles the same perturbed device for every jobs/shards
     setting (Variation.perturbed seeds from splitmix(seed, index)), and
     cycles_survived is pure data, so the ensemble is reproducible and
     marshalable across the shard tier *)
  let survived =
    Sweep.init ?jobs ?shards cells (fun index ->
        let t = D.Variation.perturbed ~seed ~index ~base () in
        let run =
          M.Endurance.cycle_cell ~program_pulse:(short_pulse 15.)
            ~erase_pulse:(short_pulse (-15.)) ?surrogate t ~cycles
        in
        run.M.Endurance.cycles_survived)
  in
  let sorted = Array.copy survived in
  Array.sort compare sorted;
  {
    cells;
    survived_all =
      Array.fold_left (fun a c -> if c >= cycles then a + 1 else a) 0 survived;
    cycles_min = sorted.(0);
    cycles_median = sorted.(cells / 2);
    cycles_max = sorted.(cells - 1);
  }

(* ---------- Ext E: quantum capacitance ---------- *)

let stack layers =
  Mat.Mlgnr.make (Mat.Gnr.make Mat.Gnr.Armchair 12) ~layers

let effective_gcr t ~layers =
  let cq_per_area = Mat.Mlgnr.quantum_capacitance (stack layers) ~ef_ev:0.2 ~temp:300. in
  let cq = cq_per_area *. t.D.Fgt.area in
  let caps = D.Capacitance.with_quantum_capacitance t.D.Fgt.caps ~cq in
  D.Capacitance.gcr caps

let qcap_comparison ~layers =
  let t = Params.device () in
  List.map (fun n -> (n, D.Fgt.gcr t, effective_gcr t ~layers:n)) layers

let qcap_jv_figure () =
  let t = Params.device () in
  let curve ~label ~gcr =
    let pts =
      Figures.jv_sweep_gcr ~polarity:`Program ~gcr ~xto_nm:Params.xto_default_nm
        ~vgs_range:Params.vgs_program_range ~points:Params.sweep_points
    in
    Plot.Series.make ~label pts
  in
  let g0 = D.Fgt.gcr t in
  Plot.Figure.make ~title:"Ext E: quantum-capacitance correction to the J-V"
    ~xlabel:"VGS [V]" ~ylabel:"JFN [A/cm^2]" ~yscale:Plot.Scale.Log10
    [
      curve ~label:"geometric GCR (no Cq)" ~gcr:g0;
      curve ~label:"1-layer FG (with Cq)" ~gcr:(effective_gcr t ~layers:1);
      curve ~label:"5-layer FG (with Cq)" ~gcr:(effective_gcr t ~layers:5);
    ]

(* ---------- Ext F: NAND block demo ---------- *)

(* ---------- Ext K: retention after cycling ---------- *)

let retention_after_cycling ?(cycles_list = [ 0; 100; 1_000; 10_000 ]) () =
  let t = Params.device () in
  let fn = Params.fn () in
  let rel = D.Reliability.default in
  (* per-cycle fluence at the paper bias *)
  let per_cycle =
    match D.Transient.saturation_charge t ~vgs:Params.vgs_program with
    | Ok q -> 2. *. abs_float q /. t.D.Fgt.area /. C.q  (* electrons/m^2 *)
    | Error e ->
      Tel.count ("extensions/fluence_fallback/" ^ Err.label e);
      0.
  in
  (* self-field of a 2 V-programmed cell, the retention bias point *)
  let qfg0 = D.Fgt.qfg_for_threshold_shift t ~dvt:2. in
  let v_ox = -.D.Fgt.vfg t ~vgs:0. ~qfg:qfg0 in
  let j_fresh =
    Q.Direct_tunneling.current_density fn ~v_ox ~thickness:t.D.Fgt.xto
  in
  Sweep.map_list
    (fun cycles ->
       let traps = rel.D.Reliability.trap_per_charge *. per_cycle *. float_of_int cycles in
       let j_tat =
         if traps <= 0. then 0.
         else Q.Trap_assisted.current_density fn ~trap_density:traps ~v_ox
             ~thickness:t.D.Fgt.xto
       in
       let multiplier = (j_fresh +. j_tat) /. j_fresh in
       (cycles, traps, multiplier))
    cycles_list

(* ---------- Ext L: MLC error budget ---------- *)

let mlc_error_budget ?(sigma_list = [ 0.05; 0.1; 0.2; 0.3; 0.45; 0.6 ]) () =
  Sweep.map_list (fun sigma -> M.Ber.analyze ~sigma_dvt:sigma ()) sigma_list

(* ---------- Ext M: temperature bake ---------- *)

let bake_test ?(temps = [ 300.; 358.; 398.; 438. ]) ?(dvt0 = 2.0) () =
  let t = Params.device () in
  let qfg0 = D.Fgt.qfg_for_threshold_shift t ~dvt:dvt0 in
  (* each temperature integrates a full retention trajectory - worth a domain *)
  let rows =
    Sweep.map_list
      (fun temp -> (temp, D.Retention.retention_time ~temp t ~qfg0 ~criterion:0.8))
      temps
  in
  (* Arrhenius: ln t = Ea/kT + const, restricted to finite times *)
  let finite = List.filter (fun (_, time) -> Float.is_finite time) rows in
  let ea =
    if List.length finite < 2 then nan
    else begin
      let xs =
        Array.of_list (List.map (fun (temp, _) -> 1. /. (C.k_b *. temp)) finite)
      in
      let ys = Array.of_list (List.map (fun (_, time) -> log time) finite) in
      match Gnrflash_numerics.Regression.ols xs ys with
      | Ok fit -> fit.Gnrflash_numerics.Regression.slope /. C.ev
      | Error _ -> nan
    end
  in
  (rows, ea)

(* ---------- Ext N: ID-VG read window ---------- *)

let id_vg_figure ?(dvt_programmed = 5.0) () =
  let fet = D.Fet.default in
  let vgs = Grid.linspace 0. 8. 120 in
  let curve ~label ~dvt =
    Plot.Series.make ~label (D.Fet.transfer_curve fet ~dvt ~vds:0.05 ~vgs)
  in
  Plot.Figure.make ~title:"Ext N: read-transistor transfer curves"
    ~xlabel:"VGS [V]" ~ylabel:"ID [A]" ~yscale:Plot.Scale.Log10
    [
      curve ~label:"erased (dVT = 0)" ~dvt:0.;
      curve ~label:(Printf.sprintf "programmed (dVT = %.1f V)" dvt_programmed)
        ~dvt:dvt_programmed;
    ]

type nand_summary = {
  pages_written : int;
  verify_failures : int;
  disturb_dvt_max : float;
  mean_pulses : float;
}

let nand_page_demo ?(pages = 4) ?(strings = 8) () =
  let block = M.Array_model.make (Params.device ()) ~pages ~strings in
  let ctrl = M.Controller.make block in
  let checkerboard p = Array.init strings (fun s -> (p + s) mod 2) in
  let rec write ctrl p =
    if p >= pages then Ok ctrl
    else
      match M.Controller.program_page ctrl ~page:p ~data:(checkerboard p) with
      | Error e -> Error e
      | Ok ctrl -> write ctrl (p + 1)
  in
  match write ctrl 0 with
  | Error e -> Error e
  | Ok ctrl ->
    let fails = ref 0 in
    for p = 0 to pages - 1 do
      if not (M.Controller.verify_page ctrl ~page:p ~data:(checkerboard p)) then incr fails
    done;
    (* worst drift among cells that were meant to stay erased *)
    let disturb_dvt_max = ref 0. in
    for p = 0 to pages - 1 do
      let data = checkerboard p in
      Array.iteri
        (fun s bit ->
           if bit = 1 then begin
             let c = M.Array_model.get ctrl.M.Controller.block ~page:p ~string_:s in
             disturb_dvt_max := max !disturb_dvt_max (M.Cell.dvt c)
           end)
        data
    done;
    let stats = ctrl.M.Controller.stats in
    Ok
      {
        pages_written = stats.M.Controller.programs;
        verify_failures = !fails;
        disturb_dvt_max = !disturb_dvt_max;
        mean_pulses =
          (if stats.M.Controller.programs = 0 then 0.
           else
             float_of_int stats.M.Controller.disturb_events
             /. float_of_int stats.M.Controller.programs);
      }
