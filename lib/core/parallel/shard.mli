(** Multi-process sharding tier under {!Sweep} — scale past a single
    process (and eventually a single machine) by forking worker processes,
    each owning a contiguous slice of the index space, with length-prefixed
    binary result framing over pipes.

    Entry point is {!Sweep.map}[ ~shards] (and friends) or the CLI
    [--shards] flag; this module only exposes the mechanism plus the
    worker-side introspection hooks.

    Guarantees:
    - {b bit-identical to serial}: slices are contiguous, assembled in
      shard order, and each element is produced by the same pure call as
      the serial path — job count, chunking, and shard count never change
      the result;
    - {b no hangs}: a worker that dies before writing a full frame (or
      exits nonzero) surfaces as
      {!Gnrflash_resilience.Solver_error.Worker_failed}; remaining workers
      are reaped before the error is raised;
    - {b telemetry parity}: each worker ships a snapshot of its own
      metrics in the result frame and the parent absorbs them additively,
      so counter totals and keys match an unsharded run.

    Restrictions: mapped results must be marshalable pure data (no
    closures, no custom blocks); a [Solver_failure] raised in a worker
    crosses the process boundary intact, any other exception is reported
    as [Worker_failed]. Forking with live pool domains is unsafe in
    OCaml 5, so the pool is quiesced first; a sharded sweep nested inside
    a running in-process sweep silently degrades to the in-process tier. *)

val run :
  shards:int ->
  n:int ->
  run_slice:(lo:int -> len:int -> 'b array) ->
  'b array
(** [run ~shards ~n ~run_slice] evaluates the index space [0 .. n-1] as
    [min shards (max 1 n)] contiguous slices — [run_slice ~lo ~len] must
    return the results for global indices [lo .. lo+len-1] — forking one
    worker process per slice beyond the first and concatenating in shard
    order. [~shards:1] (or [n <= 1]) runs the single slice in-process.
    @raise Invalid_argument if [shards < 1].
    @raise Gnrflash_resilience.Solver_error.Solver_failure with kind
    [Worker_failed] if a worker dies or returns a malformed frame. *)

val in_worker : unit -> bool
(** [true] inside a forked shard worker (used by tests and to suppress
    nested forking). *)

val worker_index : unit -> int option
(** The 1-based shard index inside a worker, [None] in the parent. *)

val shard_seed : seed:int -> shard:int -> int
(** Deterministic per-shard seed: [Splitmix.hash ~seed ~index:shard]. For
    workloads that want an independent stream per shard rather than the
    per-element [Sweep.splitmix] seeding (which is already
    shard-independent). *)
