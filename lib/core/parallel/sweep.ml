(* Sweep engine front end. See sweep.mli for the execution model.

   Three tiers, all bit-identical to serial by construction:
   - serial: [jobs = 1], tiny inputs, or the auto-serial probe decision;
   - in-process: chunks of the index space pulled off [Pool]'s persistent
     domain pool (spawn cost amortized across every call in the process);
   - multi-process: [~shards] contiguous slices forked via [Shard], each
     slice running the in-process tier on its own pool. *)

module Telemetry = Gnrflash_telemetry.Telemetry

let available_jobs () = Domain.recommended_domain_count ()

let default_jobs_cell = Atomic.make 1
let set_default_jobs n = Atomic.set default_jobs_cell (max 1 n)
let default_jobs () = Atomic.get default_jobs_cell

let splitmix = Gnrflash_prng.Splitmix.hash

let pool_spawned = Pool.spawned
let pool_size = Pool.size

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Sweep: jobs < 1"

let validate_chunk = function
  | None -> None
  | Some c when c >= 1 -> Some c
  | Some _ -> invalid_arg "Sweep: chunk < 1"

let resolve_shards = function
  | None -> 1
  | Some s when s >= 1 -> s
  | Some _ -> invalid_arg "Sweep: shards < 1"

(* Legacy fixed default, used only when the probe is disabled
   ([serial_cutoff <= 0]) and no explicit [~chunk] was given. *)
let legacy_chunk ~jobs ~n = max 1 (n / (8 * jobs))

(* Auto-tuned chunk size: big enough that one chunk claim carries
   [target_chunk_seconds] of work (so the atomic-queue traffic and cache
   ping-pong are negligible against the work itself), but never so big
   that fewer than ~2 chunks per domain remain to load-balance with. *)
let target_chunk_seconds = 1e-3

let auto_chunk ~per_element_s ~n ~jobs =
  let per = Float.max per_element_s 1e-9 in
  let by_cost = int_of_float (Float.ceil (target_chunk_seconds /. per)) in
  let by_balance = max 1 ((n + (2 * jobs) - 1) / (2 * jobs)) in
  max 1 (min by_cost by_balance)

(* Run [work] over chunk indices [0 .. nchunks-1]; the calling domain
   participates, so up to [jobs - 1] pool domains assist. *)
let run_pool ~jobs ~nchunks work = Pool.run ~helpers:(jobs - 1) ~nchunks work

let default_serial_cutoff = 5e-3

(* The in-process tier over [n] elements of [get : int -> 'a] with [f]
   applied at global indices; [pre] returns probed results so no element is
   evaluated twice. *)
let run_chunked ~jobs ~chunk ~n ~pre f =
  let nchunks = (n + chunk - 1) / chunk in
  let out = Array.make nchunks [||] in
  run_pool ~jobs:(min jobs nchunks) ~nchunks (fun ci ->
      let lo = ci * chunk in
      let len = min chunk (n - lo) in
      out.(ci) <-
        Array.init len (fun k ->
            let i = lo + k in
            match pre i with Some y -> y | None -> f i));
  Array.concat (Array.to_list out)

(* Auto-serial heuristic (probe-first): spawning is amortized by the pool,
   but waking it and paying the chunk-queue traffic still costs ~the
   [serial_cutoff]; a tiny grid of cheap closed-form evaluations finishes
   faster serially. Elements 0 and 1 are evaluated serially as probes and
   the *minimum* of the two per-element times extrapolates the whole-sweep
   cost — the minimum, because a first-call artifact (surrogate table
   build, WKB cache fill) inflates one probe and must not misroute every
   later medium-sized grid. Probed results are reused either way — no
   element is evaluated twice — and both paths apply the same pure
   function to the same inputs in input order, so the decision never
   changes the output. *)
let mapi_in_process ~jobs ~chunk ~serial_cutoff f n xs_get =
  let f i = f i (xs_get i) in
  if jobs = 1 || n <= 1 then Array.init n f
  else if serial_cutoff <= 0. then begin
    (* heuristic disabled: the pure pool path, no probe *)
    let chunk =
      match chunk with Some c -> c | None -> legacy_chunk ~jobs ~n
    in
    run_chunked ~jobs ~chunk ~n ~pre:(fun _ -> None) f
  end
  else begin
    let probe i =
      (* lint: allow L9 — the probe time only picks the chunk size; the
         element values y are what the sweep returns, and those are
         computed identically for any chunking *)
      let t0 = Unix.gettimeofday () in
      let y = f i in
      (* lint: allow L9 — see above: timing steers scheduling, not results *)
      (y, Unix.gettimeofday () -. t0)
    in
    let y0, p0 = probe 0 in
    let y1, p1 = probe 1 in
    let per = Float.min p0 p1 in
    if per *. float_of_int n <= serial_cutoff then begin
      Telemetry.count "sweep/auto_serial";
      Array.init n (fun i -> if i = 0 then y0 else if i = 1 then y1 else f i)
    end
    else if n = 2 then [| y0; y1 |]
    else begin
      let chunk =
        match chunk with
        | Some c -> c
        | None -> auto_chunk ~per_element_s:per ~n ~jobs
      in
      run_chunked ~jobs ~chunk ~n
        ~pre:(fun i -> if i = 0 then Some y0 else if i = 1 then Some y1 else None)
        f
    end
  end

let mapi ?jobs ?chunk ?(serial_cutoff = default_serial_cutoff) ?shards f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs in
  let chunk = validate_chunk chunk in
  let shards = resolve_shards shards in
  let slice ~lo ~len =
    mapi_in_process ~jobs ~chunk ~serial_cutoff
      (fun k x -> f (lo + k) x)
      len
      (fun k -> xs.(lo + k))
  in
  if shards = 1 || n <= 1 then slice ~lo:0 ~len:n
  else Shard.run ~shards ~n ~run_slice:slice

let map ?jobs ?chunk ?serial_cutoff ?shards f xs =
  mapi ?jobs ?chunk ?serial_cutoff ?shards (fun _ x -> f x) xs

let init ?jobs ?chunk ?serial_cutoff ?shards n f =
  if n < 0 then invalid_arg "Sweep.init: n < 0";
  mapi ?jobs ?chunk ?serial_cutoff ?shards (fun i () -> f i) (Array.make n ())

let map_list ?jobs ?chunk ?serial_cutoff ?shards f xs =
  Array.to_list (map ?jobs ?chunk ?serial_cutoff ?shards f (Array.of_list xs))

let grid ?jobs ?chunk ?serial_cutoff ?shards f ~outer ~inner =
  let no = Array.length outer and ni = Array.length inner in
  if no = 0 || ni = 0 then Array.make no [||]
  else begin
    let flat =
      init ?jobs ?chunk ?serial_cutoff ?shards (no * ni)
        (fun k -> f outer.(k / ni) inner.(k mod ni))
    in
    Array.init no (fun i -> Array.sub flat (i * ni) ni)
  end
