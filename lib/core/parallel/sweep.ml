(* Domain-pool sweep engine. See sweep.mli for the execution model.

   Safety argument for the shared state:
   - [next] is the only cross-domain coordination on the hot path: an atomic
     fetch-and-add handing out chunk indices (work stealing at chunk
     granularity);
   - [out] is an array of per-chunk result arrays; each slot is written by
     exactly one domain (the one that claimed the chunk) and only read after
     [Domain.join], which publishes the writes;
   - the first exception is parked in [err] via compare-and-set and re-raised
     on the caller's domain once the pool has drained. *)

module Telemetry = Gnrflash_telemetry.Telemetry

let available_jobs () = Domain.recommended_domain_count ()

let default_jobs_cell = Atomic.make 1
let set_default_jobs n = Atomic.set default_jobs_cell (max 1 n)
let default_jobs () = Atomic.get default_jobs_cell

(* splitmix64 finalizer over (seed, index), truncated to OCaml's
   non-negative int range. Int64 arithmetic keeps the 64-bit wraparound the
   constants were designed for. *)
let splitmix ~seed ~index =
  let open Int64 in
  let mix z =
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let golden = 0x9E3779B97F4A7C15L in
  (* two rounds of the stream: position [seed] then split by [index] *)
  let z = mix (add (of_int seed) golden) in
  let z = mix (add z (mul (of_int index) golden)) in
  to_int (shift_right_logical z 2)

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Sweep: jobs < 1"

let resolve_chunk ~jobs ~n = function
  | None -> max 1 (n / (8 * jobs))
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Sweep: chunk < 1"

(* Run [work] over chunk indices [0 .. nchunks-1] on [jobs] domains; the
   calling domain is one of the workers, so [jobs - 1] domains are spawned. *)
let run_pool ~jobs ~nchunks work =
  let next = Atomic.make 0 in
  let err : exn option Atomic.t = Atomic.make None in
  let drain () =
    let continue = ref true in
    while !continue do
      let chunk = Atomic.fetch_and_add next 1 in
      if chunk >= nchunks || Atomic.get err <> None then continue := false
      else
        try work chunk
        with e -> ignore (Atomic.compare_and_set err None (Some e))
    done
  in
  let prefix = Telemetry.context_prefix () in
  let worker () =
    (* adopt the caller's span context so parallel work is attributed (and
       keyed) exactly like the serial equivalent, then hand the
       domain-local telemetry to the global accumulator before joining *)
    Fun.protect
      ~finally:Telemetry.flush_local
      (fun () -> Telemetry.with_context_prefix prefix drain)
  in
  let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  (* participate rather than idle-wait; the main domain keeps its own sink *)
  drain ();
  Array.iter Domain.join spawned;
  match Atomic.get err with Some e -> raise e | None -> ()

let mapi ?jobs ?chunk f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs in
  if jobs = 1 || n <= 1 then Array.mapi f xs
  else begin
    let chunk = resolve_chunk ~jobs ~n chunk in
    let nchunks = (n + chunk - 1) / chunk in
    let out = Array.make nchunks [||] in
    run_pool ~jobs:(min jobs nchunks) ~nchunks (fun ci ->
        let lo = ci * chunk in
        let len = min chunk (n - lo) in
        out.(ci) <- Array.init len (fun k -> f (lo + k) xs.(lo + k)));
    Array.concat (Array.to_list out)
  end

let map ?jobs ?chunk f xs = mapi ?jobs ?chunk (fun _ x -> f x) xs

let init ?jobs ?chunk n f =
  if n < 0 then invalid_arg "Sweep.init: n < 0";
  mapi ?jobs ?chunk (fun i () -> f i) (Array.make n ())

let map_list ?jobs ?chunk f xs =
  Array.to_list (map ?jobs ?chunk f (Array.of_list xs))

let grid ?jobs ?chunk f ~outer ~inner =
  let no = Array.length outer and ni = Array.length inner in
  if no = 0 || ni = 0 then Array.make no [||]
  else begin
    let flat = init ?jobs ?chunk (no * ni) (fun k -> f outer.(k / ni) inner.(k mod ni)) in
    Array.init no (fun i -> Array.sub flat (i * ni) ni)
  end
