(* Domain-pool sweep engine. See sweep.mli for the execution model.

   Safety argument for the shared state:
   - [next] is the only cross-domain coordination on the hot path: an atomic
     fetch-and-add handing out chunk indices (work stealing at chunk
     granularity);
   - [out] is an array of per-chunk result arrays; each slot is written by
     exactly one domain (the one that claimed the chunk) and only read after
     [Domain.join], which publishes the writes;
   - the first exception is parked in [err] via compare-and-set and re-raised
     on the caller's domain once the pool has drained. *)

module Telemetry = Gnrflash_telemetry.Telemetry

let available_jobs () = Domain.recommended_domain_count ()

let default_jobs_cell = Atomic.make 1
let set_default_jobs n = Atomic.set default_jobs_cell (max 1 n)
let default_jobs () = Atomic.get default_jobs_cell

(* splitmix64 finalizer over (seed, index), truncated to OCaml's
   non-negative int range. Int64 arithmetic keeps the 64-bit wraparound the
   constants were designed for. *)
let splitmix ~seed ~index =
  let open Int64 in
  let mix z =
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let golden = 0x9E3779B97F4A7C15L in
  (* two rounds of the stream: position [seed] then split by [index] *)
  let z = mix (add (of_int seed) golden) in
  let z = mix (add z (mul (of_int index) golden)) in
  to_int (shift_right_logical z 2)

let resolve_jobs = function
  | None -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some _ -> invalid_arg "Sweep: jobs < 1"

let resolve_chunk ~jobs ~n = function
  | None -> max 1 (n / (8 * jobs))
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Sweep: chunk < 1"

(* Run [work] over chunk indices [0 .. nchunks-1] on [jobs] domains; the
   calling domain is one of the workers, so [jobs - 1] domains are spawned. *)
let run_pool ~jobs ~nchunks work =
  let next = Atomic.make 0 in
  let err : exn option Atomic.t = Atomic.make None in
  let drain () =
    let continue = ref true in
    while !continue do
      let chunk = Atomic.fetch_and_add next 1 in
      if chunk >= nchunks || Atomic.get err <> None then continue := false
      else
        try work chunk
        with e -> ignore (Atomic.compare_and_set err None (Some e))
    done
  in
  let prefix = Telemetry.context_prefix () in
  let worker () =
    (* adopt the caller's span context so parallel work is attributed (and
       keyed) exactly like the serial equivalent, then hand the
       domain-local telemetry to the global accumulator before joining *)
    Fun.protect
      ~finally:Telemetry.flush_local
      (fun () -> Telemetry.with_context_prefix prefix drain)
  in
  let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  (* participate rather than idle-wait; the main domain keeps its own sink *)
  drain ();
  Array.iter Domain.join spawned;
  match Atomic.get err with Some e -> raise e | None -> ()

(* Auto-serial heuristic: spawning and joining a domain pool costs on the
   order of a millisecond; a tiny grid of cheap closed-form evaluations
   (e.g. a 4×4 model-comparison slice) finishes faster than the pool warms
   up. When [serial_cutoff > 0] and a parallel run was requested, the first
   element is evaluated serially as a probe; if the extrapolated whole-sweep
   cost [probe_time * n] is within the cutoff the rest runs serially too
   ([sweep/auto_serial]). Either way the probed result is reused — element 0
   is never evaluated twice — and because both paths apply the same pure
   function to the same inputs in input order, the output is bit-identical
   to the pool run by construction. *)
let default_serial_cutoff = 5e-3

let mapi ?jobs ?chunk ?(serial_cutoff = default_serial_cutoff) f xs =
  let n = Array.length xs in
  let jobs = resolve_jobs jobs in
  if jobs = 1 || n <= 1 then Array.mapi f xs
  else begin
  (* validate eagerly: the auto-serial path must reject a bad [chunk] just
     like the pool path it replaces *)
  let chunk = resolve_chunk ~jobs ~n chunk in
  if serial_cutoff <= 0. then begin
    (* heuristic disabled: the pure pool path, no probe *)
    let nchunks = (n + chunk - 1) / chunk in
    let out = Array.make nchunks [||] in
    run_pool ~jobs:(min jobs nchunks) ~nchunks (fun ci ->
        let lo = ci * chunk in
        let len = min chunk (n - lo) in
        out.(ci) <- Array.init len (fun k -> f (lo + k) xs.(lo + k)));
    Array.concat (Array.to_list out)
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let y0 = f 0 xs.(0) in
    let probe = Unix.gettimeofday () -. t0 in
    if probe *. float_of_int n <= serial_cutoff then begin
      Telemetry.count "sweep/auto_serial";
      Array.init n (fun i -> if i = 0 then y0 else f i xs.(i))
    end
    else begin
      let nchunks = (n + chunk - 1) / chunk in
      let out = Array.make nchunks [||] in
      run_pool ~jobs:(min jobs nchunks) ~nchunks (fun ci ->
          let lo = ci * chunk in
          let len = min chunk (n - lo) in
          out.(ci) <-
            Array.init len (fun k ->
                let i = lo + k in
                if i = 0 then y0 else f i xs.(i)));
      Array.concat (Array.to_list out)
    end
  end
  end

let map ?jobs ?chunk ?serial_cutoff f xs =
  mapi ?jobs ?chunk ?serial_cutoff (fun _ x -> f x) xs

let init ?jobs ?chunk ?serial_cutoff n f =
  if n < 0 then invalid_arg "Sweep.init: n < 0";
  mapi ?jobs ?chunk ?serial_cutoff (fun i () -> f i) (Array.make n ())

let map_list ?jobs ?chunk ?serial_cutoff f xs =
  Array.to_list (map ?jobs ?chunk ?serial_cutoff f (Array.of_list xs))

let grid ?jobs ?chunk ?serial_cutoff f ~outer ~inner =
  let no = Array.length outer and ni = Array.length inner in
  if no = 0 || ni = 0 then Array.make no [||]
  else begin
    let flat =
      init ?jobs ?chunk ?serial_cutoff (no * ni)
        (fun k -> f outer.(k / ni) inner.(k mod ni))
    in
    Array.init no (fun i -> Array.sub flat (i * ni) ni)
  end
