(* Multi-process sharding tier under [Sweep].

   A sharded sweep forks [shards - 1] worker processes (each one a copy of
   the running binary, e.g. gnrflash_cli), hands each a contiguous slice of
   the index space, and reads one length-prefixed Marshal frame per worker
   back over a pipe. The parent computes slice 0 itself while the children
   run, then assembles slices in shard order — so the combined output is
   the same elements, in the same order, produced by the same pure calls as
   the serial path.

   Fork discipline: forking an OCaml 5 process with live domains is unsafe
   (the child inherits runtime bookkeeping for domains that do not exist
   there), so the in-process pool is quiesced first; if it is busy (a
   nested sweep), sharding degrades to the in-process tier instead.

   Framing: 8-byte big-endian payload length, then Marshal bytes. A dead
   worker (EOF before a full frame, or a nonzero wait status) surfaces as
   [Solver_error.Worker_failed] — never a hang: the parent owns the read
   ends, reads shards in order, and reaps every child before raising. *)

module Telemetry = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error

type 'b payload =
  | P_ok of 'b array * Telemetry.snapshot option
  | P_solver_error of Err.t
  | P_exn of string

(* Set (only) in forked children, before the slice runs. *)
let worker_slot : int option ref = ref None
let in_worker () = Option.is_some !worker_slot
let worker_index () = !worker_slot

let shard_seed ~seed ~shard = Gnrflash_prng.Splitmix.hash ~seed ~index:shard

let solver = "Sweep.shard"

let fail_worker ~shard detail =
  Err.fail ~solver (Err.Worker_failed { shard; detail })

(* ---- framing ---- *)

let max_frame = 1 lsl 30

let write_all fd buf =
  let n = Bytes.length buf in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + Unix.write fd buf !pos (n - !pos)
  done

let write_frame fd payload =
  let body = Marshal.to_bytes payload [] in
  let hdr = Bytes.create 8 in
  Bytes.set_int64_be hdr 0 (Int64.of_int (Bytes.length body));
  write_all fd hdr;
  write_all fd body

(* [None] on EOF before [len] bytes arrived. *)
let read_exactly fd len =
  let buf = Bytes.create len in
  let pos = ref 0 in
  let eof = ref false in
  while (not !eof) && !pos < len do
    match Unix.read fd buf !pos (len - !pos) with
    | 0 -> eof := true
    | k -> pos := !pos + k
  done;
  if !eof then None else Some buf

let read_frame ~shard fd =
  match read_exactly fd 8 with
  | None -> None
  | Some hdr ->
    let len = Int64.to_int (Bytes.get_int64_be hdr 0) in
    if len < 0 || len > max_frame then
      fail_worker ~shard (Printf.sprintf "bad frame length %d" len);
    (match read_exactly fd len with
     | None -> None
     | Some body -> Some body)

(* ---- slicing ---- *)

let slices ~k ~n =
  let base = n / k and rem = n mod k in
  let lo = ref 0 in
  Array.init k (fun s ->
      let len = base + if s < rem then 1 else 0 in
      let here = !lo in
      lo := here + len;
      (here, len))

(* ---- child side ---- *)

let child_main ~shard ~prefix ~lo ~len ~run_slice wfd =
  worker_slot := Some shard;
  Pool.reset_after_fork ();
  (* drop inherited metrics so the snapshot shipped back is this worker's
     contribution only — the parent absorbs it additively *)
  Telemetry.reset ();
  let payload =
    match
      Telemetry.with_context_prefix prefix (fun () -> run_slice ~lo ~len)
    with
    | ys ->
      let snap =
        if Telemetry.is_enabled () then begin
          Telemetry.flush_local ();
          Some (Telemetry.snapshot ())
        end
        else None
      in
      P_ok (ys, snap)
    | exception Err.Solver_failure e -> P_solver_error e
    | exception e -> P_exn (Printexc.to_string e)
  in
  (try
     write_frame wfd payload;
     Unix.close wfd
   with _ -> ());
  (* _exit: no at_exit, no duplicate flushing of inherited stdio buffers *)
  Unix._exit 0

(* ---- parent side ---- *)

let reap ~kill children from_shard =
  Array.iteri
    (fun i (pid, rfd) ->
       if i + 1 >= from_shard then begin
         (try Unix.close rfd with _ -> ());
         if kill then (try Unix.kill pid Sys.sigkill with _ -> ());
         (try ignore (Unix.waitpid [] pid) with _ -> ())
       end)
    children

let wait_status pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> None
  | Unix.WEXITED c -> Some (Printf.sprintf "exited with code %d" c)
  | Unix.WSIGNALED sg -> Some (Printf.sprintf "killed by signal %d" sg)
  | Unix.WSTOPPED sg -> Some (Printf.sprintf "stopped by signal %d" sg)

let collect ~children ~shard (pid, rfd) =
  let fail detail =
    (try Unix.close rfd with _ -> ());
    (try ignore (Unix.waitpid [] pid) with _ -> ());
    reap ~kill:true children (shard + 1);
    fail_worker ~shard detail
  in
  match read_frame ~shard rfd with
  | exception (Err.Solver_failure _ as e) ->
    (try Unix.close rfd with _ -> ());
    (try ignore (Unix.waitpid [] pid) with _ -> ());
    reap ~kill:true children (shard + 1);
    raise e
  | None ->
    let status =
      match wait_status pid with None -> "exited with code 0" | Some s -> s
    in
    (try Unix.close rfd with _ -> ());
    reap ~kill:true children (shard + 1);
    fail_worker ~shard (Printf.sprintf "no result frame (%s)" status)
  | Some body ->
    Unix.close rfd;
    (match wait_status pid with
     | Some status ->
       reap ~kill:true children (shard + 1);
       fail_worker ~shard status
     | None ->
       (match (Marshal.from_bytes body 0 : _ payload) with
        | exception _ -> fail "malformed result frame"
        | P_ok (ys, snap) ->
          Option.iter Telemetry.absorb snap;
          ys
        | P_solver_error e ->
          reap ~kill:true children (shard + 1);
          raise (Err.Solver_failure e)
        | P_exn msg ->
          reap ~kill:true children (shard + 1);
          fail_worker ~shard ("uncaught exception: " ^ msg)))

(* [Pool.quiesce] joins every pool domain, but [Domain.join] returns once
   the worker's OCaml body has signalled termination — a beat before the
   runtime releases the domain's slot. A fork in that window still raises
   [Failure "Unix.fork may not be called while other domains were
   created"]. The condition is transient by construction (the domain is
   already on its way out and nothing respawns it), so retry briefly;
   [None] after the budget means the caller should degrade in-process. *)
let fork_after_quiesce () =
  let rec go tries =
    match Unix.fork () with
    | pid -> Some pid
    | exception Failure _ when tries > 0 ->
      Unix.sleepf 0.001;
      go (tries - 1)
    | exception Failure _ -> None
  in
  go 200

let run ~shards ~n ~run_slice =
  if shards < 1 then invalid_arg "Sweep: shards < 1";
  if shards = 1 || n <= 1 then run_slice ~lo:0 ~len:n
  else if not (Pool.quiesce ()) then
    (* nested inside an in-process sweep: forking mid-task is unsafe, and
       the in-process tier is bit-identical anyway *)
    run_slice ~lo:0 ~len:n
  else begin
    let k = min shards n in
    let prefix = Telemetry.context_prefix () in
    let sl = slices ~k ~n in
    (* spawn shards 1..k-1; each child closes the read ends it inherited *)
    let spawn shard =
      let rfd, wfd = Unix.pipe () in
      match fork_after_quiesce () with
      | Some 0 ->
        Unix.close rfd;
        let lo, len = sl.(shard) in
        child_main ~shard ~prefix ~lo ~len ~run_slice wfd
      | Some pid ->
        Unix.close wfd;
        Ok (pid, rfd)
      | None ->
        (try Unix.close rfd with _ -> ());
        (try Unix.close wfd with _ -> ());
        Error ()
    in
    let rec spawn_all acc shard =
      if shard = k then Some (Array.of_list (List.rev acc))
      else
        match spawn shard with
        | Ok c -> spawn_all (c :: acc) (shard + 1)
        | Error () ->
          (* fork stayed unavailable: reap what was already spawned and let
             the caller fall back to the (bit-identical) in-process tier *)
          List.iter
            (fun (pid, rfd) ->
               (try Unix.close rfd with _ -> ());
               (try Unix.kill pid Sys.sigkill with _ -> ());
               (try ignore (Unix.waitpid [] pid) with _ -> ()))
            acc;
          None
    in
    match spawn_all [] 1 with
    | None -> run_slice ~lo:0 ~len:n
    | Some children ->
    (* earlier children leak into later ones via inherited read fds; that
       only duplicates read ends, so EOF detection (write-end refcount) is
       unaffected — no extra bookkeeping needed *)
    let parts = Array.make k [||] in
    (match
       let lo, len = sl.(0) in
       run_slice ~lo ~len
     with
     | ys -> parts.(0) <- ys
     | exception e ->
       reap ~kill:true children 1;
       raise e);
    Array.iteri
      (fun i child -> parts.(i + 1) <- collect ~children ~shard:(i + 1) child)
      children;
    Array.concat (Array.to_list parts)
  end
