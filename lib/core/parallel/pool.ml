(* Process-lifetime domain pool behind [Sweep].

   Why a pool: BENCH showed per-call [Domain.spawn] costing more than the
   parallel win on this container's small work items (Monte-Carlo at 0.41x
   serial under --jobs 2). Spawning is ~1 ms per domain; a pool amortizes
   it across every [Sweep] call in the process.

   Safety argument for the shared state:
   - [task.next] is the only cross-domain coordination on the hot path: an
     atomic fetch-and-add handing out chunk indices (work stealing at chunk
     granularity);
   - result slots are written by exactly one domain (the one that claimed
     the chunk); a worker publishes its writes by incrementing [task.left]
     under [mutex], and the submitter reads [left] under the same mutex
     before touching the results — mutex ordering makes the writes visible;
   - the first exception is parked in [task.err] via compare-and-set and
     re-raised on the submitting domain after the task drains;
   - [busy] serializes submissions: a nested or concurrent [run] (e.g. a
     sweep inside a mapped function) degrades to the serial loop, which is
     bit-identical by construction and cannot deadlock the pool. *)

module Telemetry = Gnrflash_telemetry.Telemetry

type task = {
  work : int -> unit;
  next : int Atomic.t;
  nchunks : int;
  err : exn option Atomic.t;
  prefix : string;  (* submitter's telemetry context, adopted by workers *)
  mutable slots : int;  (* worker claims still available, under [mutex] *)
  mutable joined : int; (* workers that claimed the task, under [mutex] *)
  mutable left : int;   (* workers that finished the task, under [mutex] *)
}

type state = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : task option;
  mutable gen : int;  (* bumped per task so sleeping workers wake exactly once *)
  mutable domains : unit Domain.t list;
  mutable size : int;
  mutable shutdown : bool;
  mutable busy : bool;
}

let make_state () =
  {
    mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    current = None;
    gen = 0;
    domains = [];
    size = 0;
    shutdown = false;
    busy = false;
  }

(* A [ref] rather than a flat global so [quiesce]/[reset_after_fork] can
   swap in a fresh state atomically with respect to later submissions. *)
let state = ref (make_state ())

let spawned_total = Atomic.make 0
let spawned () = Atomic.get spawned_total

(* OCaml caps live domains well below 128; leave headroom for user domains. *)
let max_workers = 30

let drain t =
  let continue = ref true in
  while !continue do
    let chunk = Atomic.fetch_and_add t.next 1 in
    if chunk >= t.nchunks || Option.is_some (Atomic.get t.err) then continue := false
    else
      try t.work chunk
      with e -> ignore (Atomic.compare_and_set t.err None (Some e))
  done

let worker_loop st =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock st.mutex;
    while st.gen = !seen && not st.shutdown do
      Condition.wait st.work_ready st.mutex
    done;
    if st.shutdown then begin
      running := false;
      Mutex.unlock st.mutex
    end
    else begin
      seen := st.gen;
      match st.current with
      | Some t when t.slots > 0 ->
        t.slots <- t.slots - 1;
        t.joined <- t.joined + 1;
        Mutex.unlock st.mutex;
        (* adopt the submitter's span context so parallel work is keyed
           exactly like the serial equivalent, and flush the domain-local
           telemetry once per task — not per chunk — after draining *)
        (try
           Fun.protect ~finally:Telemetry.flush_local (fun () ->
               Telemetry.with_context_prefix t.prefix (fun () -> drain t))
         with e -> ignore (Atomic.compare_and_set t.err None (Some e)));
        Mutex.lock st.mutex;
        t.left <- t.left + 1;
        Condition.broadcast st.work_done;
        Mutex.unlock st.mutex
      | _ -> Mutex.unlock st.mutex
    end
  done

(* Joining the pool at process exit keeps the runtime shutdown orderly.
   An [Atomic] so concurrent first submissions from different domains race
   benignly: exactly one wins the compare-and-set and installs the hook. *)
let exit_hook_installed = Atomic.make false

let shutdown_state st =
  Mutex.lock st.mutex;
  st.shutdown <- true;
  Condition.broadcast st.work_ready;
  let ds = st.domains in
  st.domains <- [];
  st.size <- 0;
  Mutex.unlock st.mutex;
  List.iter Domain.join ds

let ensure_workers st want =
  if Atomic.compare_and_set exit_hook_installed false true then
    (* lint: allow L8 — the hook runs once, at process exit, after every
       sweep has drained; [state] swaps only in quiesce/reset_after_fork *)
    at_exit (fun () -> shutdown_state !state);
  while st.size < want do
    let d = Domain.spawn (fun () -> worker_loop st) in
    st.domains <- d :: st.domains;
    st.size <- st.size + 1;
    Atomic.incr spawned_total
  done

let run_serial ~nchunks work =
  for ci = 0 to nchunks - 1 do
    work ci
  done

let run ~helpers ~nchunks work =
  if nchunks > 0 then begin
    let st = !state in
    let helpers = min helpers (min max_workers (nchunks - 1)) in
    if helpers <= 0 then run_serial ~nchunks work
    else begin
      Mutex.lock st.mutex;
      if st.busy || st.shutdown then begin
        (* nested submission (a sweep inside a mapped function) or a pool
           mid-quiesce: the serial loop is bit-identical and deadlock-free *)
        Mutex.unlock st.mutex;
        run_serial ~nchunks work
      end
      else begin
        st.busy <- true;
        ensure_workers st helpers;
        let t =
          {
            work;
            next = Atomic.make 0;
            nchunks;
            err = Atomic.make None;
            prefix = Telemetry.context_prefix ();
            slots = helpers;
            joined = 0;
            left = 0;
          }
        in
        st.current <- Some t;
        st.gen <- st.gen + 1;
        Condition.broadcast st.work_ready;
        Mutex.unlock st.mutex;
        (* participate rather than idle-wait *)
        drain t;
        Mutex.lock st.mutex;
        while t.left < t.joined do
          Condition.wait st.work_done st.mutex
        done;
        (* claims happen under this same mutex hold, so once [left = joined]
           and [current] is cleared no worker can still touch the task *)
        st.current <- None;
        st.busy <- false;
        Mutex.unlock st.mutex;
        match Atomic.get t.err with Some e -> raise e | None -> ()
      end
    end
  end

let size () =
  let st = !state in
  Mutex.protect st.mutex (fun () -> st.size)

let busy () =
  let st = !state in
  Mutex.protect st.mutex (fun () -> st.busy)

let quiesce () =
  let st = !state in
  Mutex.lock st.mutex;
  if st.busy then begin
    Mutex.unlock st.mutex;
    false
  end
  else begin
    st.shutdown <- true;
    Condition.broadcast st.work_ready;
    let ds = st.domains in
    st.domains <- [];
    st.size <- 0;
    Mutex.unlock st.mutex;
    List.iter Domain.join ds;
    state := make_state ();
    true
  end

let reset_after_fork () =
  state := make_state ();
  Atomic.set spawned_total 0
