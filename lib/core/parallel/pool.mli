(** Process-lifetime domain pool behind {!Sweep}.

    Domains are spawned lazily on the first parallel submission and reused
    by every later one, amortizing the ~1 ms-per-domain spawn cost that
    made per-call spawning slower than serial on small work items. The
    pool grows to the largest [helpers] ever requested (capped) and is
    joined by an [at_exit] hook. *)

val run : helpers:int -> nchunks:int -> (int -> unit) -> unit
(** [run ~helpers ~nchunks work] evaluates [work ci] for every chunk index
    [ci] in [0 .. nchunks-1], pulled off a shared atomic queue by the
    calling domain plus up to [helpers] pool domains. Workers adopt the
    caller's telemetry context and flush their domain-local sinks once per
    task, after draining. The first exception raised by [work] parks, the
    task drains, and it is re-raised in the caller. A nested or concurrent
    [run] (the pool is busy) degrades to a serial loop over the chunks —
    bit-identical output, no deadlock. *)

val spawned : unit -> int
(** Total domains spawned by this pool in this process — the bench's
    parallel-overhead budget (delta across a sweep must be [<= jobs]). *)

val size : unit -> int
(** Current number of live pool domains. *)

val busy : unit -> bool
(** Whether a task is currently submitted (used by {!Shard} to refuse to
    fork mid-task). *)

val max_workers : int
(** Hard cap on pool domains, leaving headroom under OCaml's domain
    limit. *)

val quiesce : unit -> bool
(** Join every pool domain and reset to the empty (lazily respawning)
    state. Returns [false] without touching the pool if a task is in
    flight. Called by {!Shard} before [Unix.fork]: forking with live
    domains is unsafe in OCaml 5 (the child's runtime can wait on domains
    that do not exist there). *)

val reset_after_fork : unit -> unit
(** In a freshly forked child: discard inherited pool bookkeeping (the
    parent's domains do not exist here) and zero the spawn counter. *)
