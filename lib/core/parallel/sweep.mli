(** Domain-parallel sweep engine for the dense parameter grids of the
    reproduction: the Fig 6–9 [(VGS, GCR)] / [(VGS, XTO)] J–V grids, the
    Monte-Carlo {!Gnrflash_device.Variation} ensembles, and the
    retention/disturb/array sweeps.

    Execution model: a fixed pool of [jobs] domains (the calling domain
    participates as one of them) pulls fixed-size chunks of the index space
    off a shared atomic queue — cheap work stealing, so an expensive region
    of the sweep (e.g. slow transient solves near a threshold) does not
    leave the other domains idle. Results are written per-chunk and
    assembled in input order after the pool joins, so the output is
    {e bit-identical} to the serial path regardless of [jobs], chunk size,
    or scheduling. [~jobs:1] (the default unless {!set_default_jobs} was
    called) never spawns a domain and degrades to the plain serial code.

    Telemetry: workers adopt the submitting domain's span context
    ({!Gnrflash_telemetry.Telemetry.with_context_prefix}) and flush their
    domain-local sinks into the global accumulator before the pool joins,
    so counter totals — and the keys they are recorded under — match a
    serial run exactly. Span [total_s] sums the time spent in {e all}
    domains (CPU-time-like, may exceed wall clock).

    Exceptions raised by the mapped function are caught in the worker,
    the pool drains, and the first one observed is re-raised in the
    caller. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware supports. *)

val set_default_jobs : int -> unit
(** Set the pool size used when [?jobs] is omitted (clamped to [>= 1]).
    Wired to the CLI [--jobs] flag. *)

val default_jobs : unit -> int
(** Current default pool size; [1] (serial) unless {!set_default_jobs} was
    called. *)

val splitmix : seed:int -> index:int -> int
(** A non-negative 62-bit hash of [(seed, index)] (splitmix64 finalizer).
    Use as the per-element PRNG seed of a randomized sweep so every element
    draws an independent stream: the result depends only on [(seed, index)],
    never on chunking or job count, which is what makes e.g.
    [Variation.sample_devices] reproducible across [--jobs] settings. *)

val default_serial_cutoff : float
(** Default [serial_cutoff]: 5 ms — roughly the cost of spawning and
    joining a domain pool, below which parallelism can only lose. *)

val map :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float ->
  ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] evaluated on [jobs] domains.
    [chunk] is the work-queue granularity (default [max 1 (n / (8*jobs))]).

    [serial_cutoff] (seconds, default {!default_serial_cutoff}) is the
    auto-serial heuristic: when a parallel run is requested, element 0 is
    evaluated first as a serial probe, and if the extrapolated whole-sweep
    cost [probe_time * n] fits within the cutoff the remaining elements run
    serially too (counted as [sweep/auto_serial]) — a tiny grid of cheap
    evaluations finishes before a pool would even warm up. The probed
    result is reused in both paths (element 0 is never evaluated twice),
    and since both paths apply the same pure function to the same inputs in
    input order, the decision never changes the result: output stays
    bit-identical across [jobs], chunking, and the heuristic. Pass
    [~serial_cutoff:0.] to disable the probe and force the pool path.
    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val mapi :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float ->
  (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed {!map}. *)

val init :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float ->
  int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] evaluated on [jobs] domains.
    @raise Invalid_argument if [n < 0]. *)

val map_list :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float ->
  ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val grid :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float ->
  ('a -> 'b -> 'c) -> outer:'a array -> inner:'b array -> 'c array array
(** [grid f ~outer ~inner] evaluates the full Cartesian product as one flat
    work queue — [(grid f ~outer ~inner).(i).(j) = f outer.(i) inner.(j)] —
    so load balances across the whole surface rather than row by row. The
    auto-serial probe (see {!map}) extrapolates from the flattened size. *)
