(** Parallel sweep engine for the dense parameter grids of the
    reproduction: the Fig 6–9 [(VGS, GCR)] / [(VGS, XTO)] J–V grids, the
    Monte-Carlo {!Gnrflash_device.Variation} ensembles, and the
    retention/disturb/array sweeps.

    Execution model, in three tiers:
    - {b serial} — [~jobs:1] (the default unless {!set_default_jobs} was
      called), tiny inputs, or the auto-serial probe decision; never
      touches a domain.
    - {b in-process} — [jobs] domains (the calling domain participates as
      one of them) pull chunks of the index space off a shared atomic
      queue: cheap work stealing, so an expensive region of the sweep
      (e.g. slow transient solves near a threshold) does not leave the
      other domains idle. The [jobs - 1] helper domains come from a
      lazily created {e process-lifetime pool} ({!Pool}) — spawn cost is
      paid once per process, not per call — and chunk size is auto-tuned
      from the probe (see below) so each chunk claim carries
      {!target_chunk_seconds} of work.
    - {b multi-process} — [~shards] forks worker processes, each running
      the in-process tier over a contiguous slice and shipping results
      back as length-prefixed binary frames ({!Shard}). Results must be
      marshalable pure data; a dead worker surfaces as a typed
      [Worker_failed] solver error, never a hang.

    Results are assembled in input order whatever the tier, so the output
    is {e bit-identical} to the serial path regardless of [jobs], [chunk],
    [shards], or scheduling.

    Telemetry: pool workers adopt the submitting domain's span context
    ({!Gnrflash_telemetry.Telemetry.with_context_prefix}) and flush their
    domain-local sinks into the global accumulator {e once per sweep}
    (not per chunk); shard workers ship a snapshot home in the result
    frame. Counter totals — and the keys they are recorded under — match
    a serial run exactly. Span [total_s] sums the time spent in {e all}
    domains (CPU-time-like, may exceed wall clock).

    Exceptions raised by the mapped function are caught in the worker,
    the sweep drains, and the first one observed is re-raised in the
    caller. *)

val available_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what the hardware supports. *)

val set_default_jobs : int -> unit
(** Set the job count used when [?jobs] is omitted (clamped to [>= 1]).
    Wired to the CLI [--jobs] flag. *)

val default_jobs : unit -> int
(** Current default job count; [1] (serial) unless {!set_default_jobs}
    was called. *)

val splitmix : seed:int -> index:int -> int
(** A non-negative 62-bit hash of [(seed, index)] (splitmix64 finalizer,
    re-exported from {!Gnrflash_prng.Splitmix}). Use as the per-element
    PRNG seed of a randomized sweep so every element draws an independent
    stream: the result depends only on [(seed, index)], never on
    chunking, job count, or shard count, which is what makes e.g.
    [Variation.sample_devices] reproducible across [--jobs]/[--shards]
    settings. *)

val default_serial_cutoff : float
(** Default [serial_cutoff]: 5 ms — roughly the cost of waking the pool
    and paying the chunk-queue traffic, below which parallelism can only
    lose. *)

val target_chunk_seconds : float
(** Auto-chunking target: 1 ms of estimated work per chunk claim. *)

val auto_chunk : per_element_s:float -> n:int -> jobs:int -> int
(** The chunk size the probe-first path picks: large enough that one
    chunk carries {!target_chunk_seconds} of estimated work, capped so at
    least ~2 chunks per domain remain for load balancing, floored at 1.
    Exposed for tests and capacity planning. *)

val pool_spawned : unit -> int
(** Total pool domains spawned in this process — the bench's
    parallel-overhead budget: the delta across any one sweep must be
    [<= jobs]. *)

val pool_size : unit -> int
(** Current number of live pool domains (0 until the first parallel
    sweep; the pool persists afterwards). *)

val map :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float -> ?shards:int ->
  ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [Array.map f xs] evaluated on [jobs] domains.

    [chunk] overrides the auto-tuned work-queue granularity (see
    {!auto_chunk}; with the probe disabled the legacy default
    [max 1 (n / (8*jobs))] applies). Prefer the auto-tuning — hardcoded
    chunk sizes are what lint rule L7 flags.

    [serial_cutoff] (seconds, default {!default_serial_cutoff}) is the
    auto-serial heuristic: when a parallel run is requested, elements 0
    and 1 are evaluated first as serial probes, and if the extrapolated
    whole-sweep cost [min(probe0, probe1) * n] fits within the cutoff the
    remaining elements run serially too (counted as [sweep/auto_serial])
    — a tiny grid of cheap evaluations finishes before the pool would
    even wake. The minimum of two probes keeps a first-call artifact
    (surrogate table build, WKB cache fill) from inflating the estimate.
    Probed results are reused in both paths (no element is evaluated
    twice), and since both paths apply the same pure function to the same
    inputs in input order, the decision never changes the result: output
    stays bit-identical across [jobs], chunking, sharding, and the
    heuristic. Pass [~serial_cutoff:0.] to disable the probe and force
    the pool path.

    [shards] (default 1) adds the multi-process tier: the index space
    splits into [min shards n] contiguous slices, slices beyond the first
    run in forked worker processes ([jobs] domains each), and results are
    reassembled in order — see {!Shard} for the framing, error, and
    marshalability contract.

    @raise Invalid_argument if [jobs < 1], [chunk < 1], or [shards < 1].
    @raise Gnrflash_resilience.Solver_error.Solver_failure with kind
    [Worker_failed] if a shard worker dies. *)

val mapi :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float -> ?shards:int ->
  (int -> 'a -> 'b) -> 'a array -> 'b array
(** Indexed {!map}. *)

val init :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float -> ?shards:int ->
  int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] evaluated on [jobs] domains.
    @raise Invalid_argument if [n < 0]. *)

val map_list :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float -> ?shards:int ->
  ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val grid :
  ?jobs:int -> ?chunk:int -> ?serial_cutoff:float -> ?shards:int ->
  ('a -> 'b -> 'c) -> outer:'a array -> inner:'b array -> 'c array array
(** [grid f ~outer ~inner] evaluates the full Cartesian product as one
    flat work queue — [(grid f ~outer ~inner).(i).(j) = f outer.(i)
    inner.(j)] — so load balances across the whole surface rather than
    row by row. The auto-serial probe (see {!map}) extrapolates from the
    flattened size. *)
