(* Re-export so users of the umbrella library can say [Gnrflash.Shard]
   without depending on the low-level gnrflash_parallel library directly. *)
include Gnrflash_parallel.Shard
