(* Re-export so users of the umbrella library can say [Gnrflash.Resilience]
   without depending on the low-level gnrflash_resilience library directly. *)
module Solver_error = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fallback = Gnrflash_resilience.Fallback
module Fault = Gnrflash_resilience.Fault
