(* Re-export so users of the umbrella library can say [Gnrflash.Units]
   without depending on the low-level gnrflash_units library directly. *)
include Gnrflash_units
