module Plot = Gnrflash_plot

type check = {
  name : string;
  passed : bool;
  detail : string;
}

let monotone ~increasing ys =
  let ok = ref true in
  for i = 0 to Array.length ys - 2 do
    if increasing then begin
      if ys.(i + 1) < ys.(i) then ok := false
    end
    else if ys.(i + 1) > ys.(i) then ok := false
  done;
  !ok

let series_ys fig label =
  match
    List.find_opt (fun s -> s.Plot.Series.label = label) fig.Plot.Figure.series
  with
  | Some s -> Plot.Series.ys s
  | None -> invalid_arg ("Report: no series " ^ label)

let check_fig4 () =
  let _, (jin0, jout0) = Figures.fig4_initial_currents () in
  let ratio = jin0 /. max jout0 1e-300 in
  {
    name = "fig4: Jin >> Jout at t=0";
    passed = ratio > 1e6;
    detail = Printf.sprintf "Jin=%.3e Jout=%.3e A/cm^2 (ratio %.1e)" jin0 jout0 ratio;
  }

let check_fig5 () =
  let fig, tsat = Figures.fig5_transient () in
  let jin = series_ys fig "Jin" and jout = series_ys fig "Jout" in
  let n = min (Array.length jin) (Array.length jout) in
  let converged =
    n > 0 && abs_float (jin.(Array.length jin - 1) -. jout.(Array.length jout - 1))
             /. jin.(Array.length jin - 1) < 0.05
  in
  [
    {
      name = "fig5: Jin monotone decreasing";
      passed = monotone ~increasing:false jin;
      detail = Printf.sprintf "%d samples" (Array.length jin);
    };
    {
      name = "fig5: Jout monotone increasing";
      passed = monotone ~increasing:true jout;
      detail = Printf.sprintf "%d samples" (Array.length jout);
    };
    {
      name = "fig5: saturation (Jin = Jout) reached";
      passed = Option.is_some tsat && converged;
      detail =
        (match tsat with
         | Some t -> Printf.sprintf "tsat = %.3e s" t
         | None -> "no saturation event");
    };
  ]

(* For a family figure: every curve monotone in |J| along the sweep, and
   curves ordered by their parameter at the common final abscissa. *)
let family_checks ~fig ~figname ~expect_increasing_along_x =
  let series = fig.Plot.Figure.series in
  let per_curve =
    List.map
      (fun s ->
         let ys = Plot.Series.ys s in
         {
           name =
             Printf.sprintf "%s: J monotone along sweep (%s)" figname
               s.Plot.Series.label;
           passed = monotone ~increasing:expect_increasing_along_x ys;
           detail = Printf.sprintf "%d points" (Array.length ys);
         })
      series
  in
  let finals =
    List.map
      (fun s ->
         let ys = Plot.Series.ys s in
         ys.(Array.length ys - 1))
      series
  in
  let ordered =
    let rec strictly_increasing = function
      | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
      | _ -> true
    in
    strictly_increasing finals
  in
  per_curve
  @ [
    {
      name = Printf.sprintf "%s: curves ordered by parameter" figname;
      passed = ordered;
      detail =
        String.concat ", " (List.map (Printf.sprintf "%.2e") finals);
    };
  ]

let check_fig6 () =
  family_checks ~fig:(Figures.fig6_program_gcr ()) ~figname:"fig6"
    ~expect_increasing_along_x:true

let check_fig7 () =
  let fig = Figures.fig7_program_xto () in
  (* series are XTO = 5..9 nm: thinner oxide -> larger J, so the finals list
     (5 first) must be strictly DEcreasing; reverse before the shared check *)
  let reversed = { fig with Plot.Figure.series = List.rev fig.Plot.Figure.series } in
  let base = family_checks ~fig:reversed ~figname:"fig7" ~expect_increasing_along_x:true in
  (* "significant increase below 7 nm": compare decade gaps at VGS max *)
  let final label =
    let ys = series_ys fig label in
    ys.(Array.length ys - 1)
  in
  let gap_57 = log10 (final "XTO = 5 nm" /. final "XTO = 7 nm") in
  let gap_79 = log10 (final "XTO = 7 nm" /. final "XTO = 9 nm") in
  base
  @ [
    {
      name = "fig7: J rises sharply below 7 nm";
      passed = gap_57 > gap_79 && gap_57 > 2.;
      detail = Printf.sprintf "decades(5->7nm)=%.1f decades(7->9nm)=%.1f" gap_57 gap_79;
    };
  ]

let check_fig8 () =
  let fig = Figures.fig8_erase_gcr () in
  (* VGS runs -17 -> -8: |J| decreases along the sweep *)
  family_checks ~fig ~figname:"fig8" ~expect_increasing_along_x:false

let check_fig9 () =
  let fig = Figures.fig9_erase_xto () in
  let reversed = { fig with Plot.Figure.series = List.rev fig.Plot.Figure.series } in
  family_checks ~fig:reversed ~figname:"fig9" ~expect_increasing_along_x:false

let all_checks () =
  (check_fig4 () :: check_fig5 ())
  @ check_fig6 () @ check_fig7 () @ check_fig8 () @ check_fig9 ()

let render checks =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
       Buffer.add_string buf
         (Printf.sprintf "  [%s] %-55s %s\n"
            (if c.passed then "PASS" else "FAIL")
            c.name c.detail))
    checks;
  let failed = List.length (List.filter (fun c -> not c.passed) checks) in
  Buffer.add_string buf
    (Printf.sprintf "  %d/%d shape checks passed\n"
       (List.length checks - failed) (List.length checks));
  Buffer.contents buf

let series_table fig ~max_rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (fig.Plot.Figure.title ^ "\n");
  List.iter
    (fun s ->
       Buffer.add_string buf (Printf.sprintf "  %s:\n" s.Plot.Series.label);
       let pts = s.Plot.Series.points in
       let n = Array.length pts in
       let stride = max 1 (n / max_rows) in
       Array.iteri
         (fun i (x, y) ->
            if i mod stride = 0 || i = n - 1 then
              Buffer.add_string buf (Printf.sprintf "    %12.5g  %12.5g\n" x y))
         pts)
    fig.Plot.Figure.series;
  Buffer.contents buf
