(** Deterministic per-element seeding for randomized sweeps.

    Dependency-free so both the parallel engine and the resilience layer
    can share one hash without depending on each other. *)

val hash : seed:int -> index:int -> int
(** A non-negative 62-bit hash of [(seed, index)] (splitmix64 finalizer).
    The result depends only on [(seed, index)] — never on chunking, job
    count, or shard count — which is what makes randomized sweeps
    reproducible across every execution tier. Re-exported as
    [Sweep.splitmix]. *)
