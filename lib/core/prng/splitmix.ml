(* splitmix64 finalizer over (seed, index), truncated to OCaml's
   non-negative int range. Int64 arithmetic keeps the 64-bit wraparound the
   constants were designed for. *)
let hash ~seed ~index =
  let open Int64 in
  let mix z =
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let golden = 0x9E3779B97F4A7C15L in
  (* two rounds of the stream: position [seed] then split by [index] *)
  let z = mix (add (of_int seed) golden) in
  let z = mix (add z (mul (of_int index) golden)) in
  to_int (shift_right_logical z 2)
