(** Physical constants, CODATA 2018 exact/recommended values, SI units. *)

val q : float
(** Elementary charge [C] (exact). *)

val h : float
(** Planck constant [J·s] (exact). *)

val hbar : float
(** Reduced Planck constant [J·s]. *)

val m0 : float
(** Electron rest mass [kg]. *)

val k_b : float
(** Boltzmann constant [J/K] (exact). *)

val eps0 : float
(** Vacuum permittivity [F/m]. *)

val c : float
(** Speed of light [m/s] (exact). *)

val ev : float
(** One electron-volt in joules (numerically equal to {!q}). *)

val v_fermi_graphene : float
(** Fermi velocity of graphene, ≈ 1×10⁶ m/s. *)

val a_cc : float
(** Graphene carbon–carbon bond length [m] (0.142 nm). *)

val a_graphene : float
(** Graphene lattice constant [m] (√3·a_cc ≈ 0.246 nm). *)

val t_hopping : float
(** Nearest-neighbour tight-binding hopping energy of graphene [J]
    (≈ 2.7 eV). *)

val room_temperature : float
(** 300 K. *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is [kB·t/q] in volts. *)

(** {1 Unit-typed views}

    The same values as above wrapped in {!Gnrflash_units} dimensions —
    bit-identical magnitudes, compile-time dimension checking. New physics
    code should prefer these; the raw floats remain for boundary shims. *)

val q_qty : Gnrflash_units.coulomb Gnrflash_units.qty
val ev_qty : Gnrflash_units.joule Gnrflash_units.qty
(** One electron-volt, as a typed energy in joules. *)

val m0_qty : Gnrflash_units.kg Gnrflash_units.qty
val k_b_qty : Gnrflash_units.j_per_k Gnrflash_units.qty
val eps0_qty : Gnrflash_units.f_per_m Gnrflash_units.qty
val room_temperature_qty : Gnrflash_units.kelvin Gnrflash_units.qty

val thermal_voltage_qty :
  Gnrflash_units.kelvin Gnrflash_units.qty -> Gnrflash_units.volt Gnrflash_units.qty
(** Typed {!thermal_voltage}. *)
