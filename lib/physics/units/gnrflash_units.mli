(** Zero-cost dimensioned floats for the FN / floating-gate pipeline.

    A [('d) qty] is a [private float] carrying a phantom dimension ['d]:
    it compiles to an unboxed [float] (constructors and accessors are
    identities), so threading it through the physics hot path costs
    nothing at runtime — but mixing dimensions is a type error at
    [dune build] time.

    The dimension algebra is deliberately small. Base dimensions are
    abstract types; derived dimensions are [( 'num, 'den ) per] pairs, so
    the generic operators can cancel them:

    - [x /@ y] divides a ['n qty] by a ['d qty] giving a [('n, 'd) per qty]
      (e.g. [volt /@ metre] is a field in V/m);
    - [r *@ y] multiplies a rate [('n, 'd) per qty] back by its
      denominator (e.g. [v_per_m *@ metre = volt], [farad *@ volt =
      coulomb]);
    - [x //@ r] divides a quantity by a rate with matching numerator
      (e.g. [coulomb //@ farad = volt] — since [farad = (coulomb, volt)
      per]).

    Same-dimension sums/differences use [+@]/[-@]; dimensionless factors
    use {!scale} and {!ratio}. The only sanctioned ways to {e cross}
    dimensions are the named conversions at the bottom of this interface
    (eV↔J, areal↔absolute capacitance and charge): everything else simply
    does not type-check. Paper mapping (Lenzlinger–Snow FN, eqs. 1, 4–7):
    barrier heights are [ev]/[joule], oxide fields [v_per_m], the network
    capacitances of eq. (2) [farad], stored charge [coulomb], current
    densities [a_per_m2], and the FN prefactor A is {!fn_a} (A/m² per
    (V/m)²). *)

type +'d qty = private float

(** {1 Dimensions} *)

type volt
type metre
type m2
type second
type kelvin
type kg
type joule
type ev

(** [coulomb] is a base dimension; amperes, farads and every "per area"
    quantity are derived from it so the generic operators cancel them. *)
type coulomb

type ('num, 'den) per

type v_per_m = (volt, metre) per
type farad = (coulomb, volt) per
type f_per_m = (farad, metre) per
type f_per_m2 = (farad, m2) per
type ampere = (coulomb, second) per
type a_per_m2 = (ampere, m2) per
type c_per_m2 = (coulomb, m2) per
type j_per_k = (joule, kelvin) per

(** The Lenzlinger–Snow prefactor A of [J = A·E²·exp(−B/E)]: an areal
    current density per squared field, so [fn_a *@ field *@ field]
    is an [a_per_m2]. The exponent coefficient B is a plain {!v_per_m}. *)
type fn_a = ((a_per_m2, v_per_m) per, v_per_m) per

(** {1 Constructors (SI magnitudes in, zero cost)} *)

val volt : float -> volt qty
val metre : float -> metre qty
val square_metre : float -> m2 qty
val second : float -> second qty
val kelvin : float -> kelvin qty
val kg : float -> kg qty
val joule : float -> joule qty
val ev : float -> ev qty
val coulomb : float -> coulomb qty
val farad : float -> farad qty
val v_per_m : float -> v_per_m qty
val f_per_m : float -> f_per_m qty
val f_per_m2 : float -> f_per_m2 qty
val ampere : float -> ampere qty
val a_per_m2 : float -> a_per_m2 qty
val c_per_m2 : float -> c_per_m2 qty
val j_per_k : float -> j_per_k qty
val fn_a : float -> fn_a qty

val to_float : 'd qty -> float
(** Extract the SI magnitude. [(x :> float)] works too — the type is
    [private float]. *)

val zero : 'd qty
(** Zero is dimension-polymorphic (0 V = 0 m = ... = 0.). *)

(** {1 Dimension-preserving arithmetic} *)

val ( +@ ) : 'd qty -> 'd qty -> 'd qty
val ( -@ ) : 'd qty -> 'd qty -> 'd qty
val scale : float -> 'd qty -> 'd qty
val neg : 'd qty -> 'd qty
val abs : 'd qty -> 'd qty

val ratio : 'd qty -> 'd qty -> float
(** [ratio a b = a /. b] — same dimension in, dimensionless out. *)

(** {1 Dimension-cancelling products} *)

val ( *@ ) : ('n, 'd) per qty -> 'd qty -> 'n qty
val ( /@ ) : 'n qty -> 'd qty -> ('n, 'd) per qty
val ( //@ ) : 'n qty -> ('n, 'd) per qty -> 'd qty

val area : metre qty -> metre qty -> m2 qty
(** [area w l] — the one sanctioned length×length product. *)

(** {1 Comparisons (same dimension only)} *)

val ( <@ ) : 'd qty -> 'd qty -> bool
val ( <=@ ) : 'd qty -> 'd qty -> bool
val ( >@ ) : 'd qty -> 'd qty -> bool
val ( >=@ ) : 'd qty -> 'd qty -> bool
val equal : 'd qty -> 'd qty -> bool
val compare : 'd qty -> 'd qty -> int

(** {1 Sanctioned dimension crossings}

    These are the {e only} ways across a dimension boundary; each is a
    physically meaningful conversion, kept here so the crossing rule is
    auditable in one place. *)

val ev_to_joule : ev qty -> joule qty
(** Multiplies by the (exact, SI-defined) elementary charge
    1.602176634e-19 C — bit-identical to [x *. Constants.ev]. *)

val joule_to_ev : joule qty -> ev qty

val absolute_of_areal : f_per_m2 qty -> area:m2 qty -> farad qty
(** F/m² × m² → F (per-cell absolute capacitance). *)

val areal_of_absolute : farad qty -> area:m2 qty -> f_per_m2 qty
(** F ÷ m² → F/m². *)

val charge_of_areal : c_per_m2 qty -> area:m2 qty -> coulomb qty
val areal_of_charge : coulomb qty -> area:m2 qty -> c_per_m2 qty

val areal_displacement : f_per_m2 qty -> v:volt qty -> c_per_m2 qty
(** F/m² × V → C/m² — the sheet-charge form of Q = C·V. *)

val voltage_across_areal : c_per_m2 qty -> f_per_m2 qty -> volt qty
(** C/m² ÷ F/m² → V. *)
