(* The whole module is identities over float: ['d qty = float] here,
   [private float] in the interface, so every constructor/accessor
   disappears at compile time and the checked operators compile to the
   same IEEE op as the raw-float code they replace (bit-identical
   results, enforced by the golden qcheck properties in the test suite). *)

type 'd qty = float

type volt
type metre
type m2
type second
type kelvin
type kg
type joule
type ev
type coulomb

type ('num, 'den) per

type v_per_m = (volt, metre) per
type farad = (coulomb, volt) per
type f_per_m = (farad, metre) per
type f_per_m2 = (farad, m2) per
type ampere = (coulomb, second) per
type a_per_m2 = (ampere, m2) per
type c_per_m2 = (coulomb, m2) per
type j_per_k = (joule, kelvin) per
type fn_a = ((a_per_m2, v_per_m) per, v_per_m) per

let volt x = x
let metre x = x
let square_metre x = x
let second x = x
let kelvin x = x
let kg x = x
let joule x = x
let ev x = x
let coulomb x = x
let farad x = x
let v_per_m x = x
let f_per_m x = x
let f_per_m2 x = x
let ampere x = x
let a_per_m2 x = x
let c_per_m2 x = x
let j_per_k x = x
let fn_a x = x

let to_float x = x
let zero = 0.

let ( +@ ) = ( +. )
let ( -@ ) = ( -. )
let scale c x = c *. x
let neg x = -.x
let abs = abs_float
let ratio a b = a /. b

let ( *@ ) = ( *. )
let ( /@ ) = ( /. )
let ( //@ ) = ( /. )
let area w l = w *. l

let ( <@ ) (a : float) b = a < b
let ( <=@ ) (a : float) b = a <= b
let ( >@ ) (a : float) b = a > b
let ( >=@ ) (a : float) b = a >= b
let equal (a : float) b = Float.equal a b
let compare (a : float) b = Float.compare a b

(* The 2019 SI definition fixes the elementary charge exactly; this
   literal must stay equal to [Constants.q]/[Constants.ev] (asserted in
   test_units) so the typed eV↔J crossing is bit-identical to the raw
   [x *. Constants.ev] boundary shims. *)
let si_elementary_charge = 1.602176634e-19

let ev_to_joule x = x *. si_elementary_charge
let joule_to_ev x = x /. si_elementary_charge

let absolute_of_areal c ~area = c *. area
let areal_of_absolute c ~area = c /. area
let charge_of_areal q ~area = q *. area
let areal_of_charge q ~area = q /. area
let areal_displacement c ~v = c *. v
let voltage_across_areal sigma c = sigma /. c
