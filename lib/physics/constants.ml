let q = 1.602176634e-19
let h = 6.62607015e-34
let hbar = h /. (2. *. Float.pi)
let m0 = 9.1093837015e-31
let k_b = 1.380649e-23
let eps0 = 8.8541878128e-12
let c = 2.99792458e8
let ev = q
let v_fermi_graphene = 1.0e6
let a_cc = 0.142e-9
let a_graphene = sqrt 3. *. a_cc
let t_hopping = 2.7 *. ev
let room_temperature = 300.
let thermal_voltage t = k_b *. t /. q

(* Unit-typed views of the constants above (same bits, dimension checked
   at compile time — see Gnrflash_units). These are the sanctioned entry
   points into the typed layer; formulas that stay raw-float must not
   multiply two of the raw values above directly (lint rule L4). *)
module U = Gnrflash_units

let q_qty = U.coulomb q
let ev_qty = U.joule ev
let m0_qty = U.kg m0
let k_b_qty = U.j_per_k k_b
let eps0_qty = U.f_per_m eps0
let room_temperature_qty = U.kelvin room_temperature
let thermal_voltage_qty t = U.volt (thermal_voltage (U.to_float t))
