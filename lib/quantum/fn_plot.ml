module Reg = Gnrflash_numerics.Regression
module Sweep = Gnrflash_parallel.Sweep

type extraction = {
  a : float;
  b : float;
  r_squared : float;
}

let points p ~fields =
  Sweep.map
    (fun e ->
       if e <= 0. then invalid_arg "Fn_plot.points: non-positive field";
       let j = Fn.current_density p ~field:e in
       (1. /. e, log (j /. (e *. e))))
    fields

let points_of_data ~fields ~currents =
  let n = Array.length fields in
  if Array.length currents <> n then invalid_arg "Fn_plot.points_of_data: length mismatch";
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if fields.(i) > 0. && currents.(i) > 0. then
      acc := (1. /. fields.(i), log (currents.(i) /. (fields.(i) *. fields.(i)))) :: !acc
  done;
  Array.of_list !acc

let extract ~fields ~currents =
  let pts = points_of_data ~fields ~currents in
  if Array.length pts < 2 then Error "Fn_plot.extract: fewer than two valid points"
  else begin
    let xs = Array.map fst pts and ys = Array.map snd pts in
    match Reg.ols xs ys with
    | Error e -> Error e
    | Ok fit ->
      Ok { a = exp fit.Reg.intercept; b = -.fit.Reg.slope; r_squared = fit.Reg.r_squared }
  end

let extract_from_model p ~fields =
  let currents = Sweep.map (fun e -> Fn.current_density p ~field:e) fields in
  extract ~fields ~currents
