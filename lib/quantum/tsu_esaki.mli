(** Tsu–Esaki tunneling current: transmission × supply-function integral,

    [J = (q·m_e·kT / 2π²ħ³) ∫ T(E)·N(E) dE],

    the "more accurate model" the paper's future-work section calls for.
    [T(E)] may come from WKB, the transfer matrix, or the exact Airy
    solution. *)

type transmission_model =
  | Wkb_model
  | Transfer_matrix_model of int (** staircase steps *)
  | Exact_airy
(** Which T(E) evaluator to plug into the integral. *)

val current_density :
  ?model:transmission_model -> ?temp:float -> ?wkb_cache:bool ->
  phi_b:float -> field:float -> thickness:float -> m_b:float ->
  ef:float -> unit -> float
(** [current_density ~phi_b ~field ~thickness ~m_b ~ef ()] is the net
    current density [A/m²] through a barrier of entry height [phi_b] (J)
    tilted by [field] (V/m) across [thickness] (m), with emitter Fermi
    level [ef] (J above the emitter band edge). The oxide potential drop
    sets the supply-function bias. [temp] defaults to 300 K, [model] to
    {!Wkb_model}.

    [wkb_cache] (default [true]) memoizes the WKB transmission via
    {!Wkb.Cache}: the piecewise-linear barrier's per-segment closed-form
    action coefficients are computed once per call and shared across all
    quadrature nodes, replacing one adaptive-Simpson recursion per node.
    Cached and uncached paths run identical arithmetic, so results are
    bit-for-bit equal either way; only the [wkb/cache_build] /
    [wkb/cache_hit] counters differ. Ignored for non-WKB models. *)

val compare_models :
  ?temp:float -> phi_b:float -> field:float -> thickness:float ->
  m_b:float -> ef:float -> unit -> (string * float) list
(** Current density from each transmission model plus the closed-form FN
    expression at the same field — the rows of the model-accuracy ablation
    (Ext A). *)
