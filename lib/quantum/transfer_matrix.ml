module C = Gnrflash_physics.Constants
module L = Gnrflash_numerics.Linalg

(* Complex wavevector in a region of potential v for energy e and mass m:
   k = sqrt(2m(e - v))/hbar, purely imaginary inside the barrier. *)
let wavevector ~m ~e ~v =
  let arg = 2. *. m *. (e -. v) in
  if arg >= 0. then
    let re = sqrt arg /. C.hbar in
    Complex.{ re; im = 0. }
  else
    let im = sqrt (-.arg) /. C.hbar in
    Complex.{ re = 0.; im }

(* Interface matrix between regions (k1, m1) -> (k2, m2) for continuity of
   psi and psi'/m, plus propagation across slab widths. *)
let transmission ?(steps = 400) (b : Barrier.t) ~energy =
  if energy <= 0. then 0.
  else begin
    let open Complex in
    let w = Barrier.width b in
    let x0 = fst b.Barrier.nodes.(0) in
    let dx = w /. float_of_int steps in
    let m_out = C.m0 in
    let m_in = b.Barrier.m_eff in
    (* region list: emitter (v=0, m_out), N slabs, collector (v at exit, m_out).
       Collector potential: profile value at the far end (usually 0 or
       negative continuation — we clamp to the final node's value). *)
    let v_slab i =
      let xc = x0 +. ((float_of_int i +. 0.5) *. dx) in
      Barrier.height_at b xc
    in
    (* Consistent with Barrier.height_at, the potential outside the profile
       is 0: both electrodes sit at the emitter band edge (the collector
       screens the oxide field instantly at the interface). *)
    let v_exit = 0. in
    let k_in = wavevector ~m:m_out ~e:energy ~v:0. in
    let k_out = wavevector ~m:m_out ~e:energy ~v:v_exit in
    if Float.equal k_out.re 0. then 0. (* evanescent collector: no propagating exit *)
    else begin
      (* Build total transfer matrix M mapping collector coefficients to
         emitter coefficients, slab by slab. For the interface between
         region a (k_a, m_a) and region b (k_b, m_b) at local coordinate 0:
         M_int = 1/2 [ [1 + r, 1 - r], [1 - r, 1 + r] ], r = (k_b m_a)/(k_a m_b).
         Propagation through slab of width d: diag(e^{-i k d}, e^{i k d}). *)
      let interface (ka : Complex.t) ma (kb : Complex.t) mb =
        if Float.equal ka.re 0. && Float.equal ka.im 0. then None
        else begin
          let r = div (mul kb { re = ma; im = 0. }) (mul ka { re = mb; im = 0. }) in
          let half = { re = 0.5; im = 0. } in
          let plus = mul half (add one r) in
          let minus = mul half (Complex.sub one r) in
          Some { L.a = plus; b = minus; c = minus; d = plus }
        end
      in
      let propagate (k : Complex.t) d =
        (* e^{±ikd}; for imaginary k = iκ this is e^{∓κd} (decaying /
           growing real exponentials). *)
        let ikd = mul { re = 0.; im = 1. } (mul k { re = d; im = 0. }) in
        { L.a = Complex.exp (neg ikd); b = zero; c = zero; d = Complex.exp ikd }
      in
      let result = ref (Some L.cmat2_id) in
      let prev_k = ref k_in and prev_m = ref m_out in
      for i = 0 to steps - 1 do
        match !result with
        | None -> ()
        | Some acc ->
          let v = v_slab i in
          let k = wavevector ~m:m_in ~e:energy ~v in
          (match interface !prev_k !prev_m k m_in with
           | None -> result := None
           | Some mi ->
             let mp = propagate k dx in
             result := Some (L.cmat2_mul (L.cmat2_mul acc mi) mp);
             prev_k := k;
             prev_m := m_in)
      done;
      match !result with
      | None -> 0.
      | Some acc ->
        (match interface !prev_k !prev_m k_out m_out with
         | None -> 0.
         | Some mi ->
           let m_total = L.cmat2_mul acc mi in
           let t_amp = div one m_total.L.a in
           let t2 = norm2 t_amp in
           (* flux normalization: (k_out / m_out) / (k_in / m_out) = k_out/k_in *)
           let flux = k_out.re /. k_in.re in
           let t = t2 *. flux in
           if Float.is_nan t then 0. else min t 1.0)
    end
  end

let transmission_spectrum ?steps b ~energies =
  Array.map (fun e -> transmission ?steps b ~energy:e) energies
