(** Wentzel–Kramers–Brillouin tunneling through an arbitrary
    piecewise-linear barrier. *)

val action_integral : Barrier.t -> energy:float -> float
(** The WKB exponent [2/ħ ∫ √(2m(V(x) − E)) dx] over the classically
    forbidden region. [0.] when the electron energy clears the barrier. *)

val transmission : Barrier.t -> energy:float -> float
(** Transmission probability [exp(−action)], in [0, 1]. Energies above the
    barrier maximum transmit with probability 1 (WKB has no above-barrier
    reflection). *)

val transmission_triangular :
  phi_b:float -> field:float -> m_eff:float -> float
(** Closed-form WKB transmission at the Fermi level (E = 0) through the FN
    triangle: [exp(−4√(2m)·φ_B^{3/2} / (3ħqE))]. Cross-validates
    {!transmission} on {!Barrier.triangular}. *)

(** Memoized closed-form WKB evaluator for one fixed (barrier, bias)
    shape, shared across every quadrature node of a supply-function
    integral. Because a {!Barrier.t} is piecewise linear, the action
    integrand [√(2m(V−E))] integrates segment-by-segment in closed form
    ([(2/3)((V_b−E)₊^{3/2} − (V_a−E)₊^{3/2})/slope], width·√(2m(V−E)) for
    flat segments) — exact, allocation-free per energy, and with zero
    integrand evaluations, versus one adaptive-Simpson recursion per node
    for {!action_integral}. Building the cache counts [wkb/cache_build];
    each energy lookup counts [wkb/cache_hit]. The cache is immutable and
    never invalidates: a new barrier (different bias, thickness, or
    height) requires a new {!Cache.make}. *)
module Cache : sig
  type t

  val make : Barrier.t -> t
  (** Precompute per-segment geometry (width, endpoint heights, slope) and
      √(2m). Counts [wkb/cache_build]. *)

  val action : t -> energy:float -> float
  (** Closed-form WKB exponent; agrees with {!action_integral} to the
      adaptive quadrature's tolerance (~1e-9 relative) and is exact for
      the piecewise-linear barrier. Counts [wkb/cache_hit]. *)

  val transmission : t -> energy:float -> float
  (** [exp (−action)], clamped to 1 above the barrier maximum. *)
end

val transmission_closed : Barrier.t -> energy:float -> float
(** One-shot closed-form transmission: identical arithmetic to
    {!Cache.transmission} (bit-for-bit), but recomputes the segment table
    on every call and bumps no cache counters. This is the
    [~wkb_cache:false] path of {!Tsu_esaki.current_density}. *)
