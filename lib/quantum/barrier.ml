module C = Gnrflash_physics.Constants

type t = {
  nodes : (float * float) array;
  m_eff : float;
}

let make ~m_eff pts =
  if m_eff <= 0. then invalid_arg "Barrier.make: m_eff <= 0";
  let nodes = Array.of_list pts in
  if Array.length nodes < 2 then invalid_arg "Barrier.make: need >= 2 points";
  for i = 0 to Array.length nodes - 2 do
    if fst nodes.(i + 1) <= fst nodes.(i) then
      invalid_arg "Barrier.make: x not strictly increasing"
  done;
  { nodes; m_eff }

let triangular ~phi_b ~field ~m_eff =
  if phi_b <= 0. then invalid_arg "Barrier.triangular: phi_b <= 0";
  if field <= 0. then invalid_arg "Barrier.triangular: field <= 0";
  let x_exit = phi_b /. (C.q *. field) in
  make ~m_eff [ (0., phi_b); (x_exit, 0.) ]

let trapezoidal ~phi_b ~v_ox ~thickness ~m_eff =
  if phi_b <= 0. then invalid_arg "Barrier.trapezoidal: phi_b <= 0";
  if thickness <= 0. then invalid_arg "Barrier.trapezoidal: thickness <= 0";
  if v_ox < 0. then invalid_arg "Barrier.trapezoidal: v_ox < 0";
  let drop = C.q *. v_ox in
  if drop <= phi_b then
    make ~m_eff [ (0., phi_b); (thickness, phi_b -. drop) ]
  else begin
    (* FN regime: barrier hits zero inside the oxide *)
    let x_exit = thickness *. phi_b /. drop in
    make ~m_eff [ (0., phi_b); (x_exit, 0.) ]
  end

let height_at b x =
  let n = Array.length b.nodes in
  let x0, _ = b.nodes.(0) and xn, _ = b.nodes.(n - 1) in
  if x < x0 || x > xn then 0.
  else begin
    (* find segment *)
    let rec seg i =
      if i >= n - 1 then n - 2
      else if fst b.nodes.(i + 1) >= x then i
      else seg (i + 1)
    in
    let i = seg 0 in
    let xa, va = b.nodes.(i) and xb, vb = b.nodes.(i + 1) in
    va +. ((vb -. va) *. (x -. xa) /. (xb -. xa))
  end

let width b =
  let n = Array.length b.nodes in
  fst b.nodes.(n - 1) -. fst b.nodes.(0)

let max_height b = Array.fold_left (fun acc (_, v) -> max acc v) neg_infinity b.nodes

let with_image_force ~eps_r b =
  if eps_r <= 0. then invalid_arg "Barrier.with_image_force: eps_r <= 0";
  let n_samples = 200 in
  let x0 = fst b.nodes.(0) in
  let w = width b in
  let clamp_dist = 0.05e-9 in
  let image x =
    (* image from the emitter interface at x0 *)
    let d = max (x -. x0) clamp_dist in
    (* lint: allow L4 — the image-potential strength q²/(16π·ε) has no
       name in the units-layer per-algebra; raw SI product kept *)
    -.(C.q *. C.q) /. (16. *. Float.pi *. C.eps0 *. eps_r *. d)
  in
  let pts =
    List.init n_samples (fun i ->
        let x = x0 +. (w *. float_of_int i /. float_of_int (n_samples - 1)) in
        let v = height_at b x +. image x in
        (x, max v 0.))
  in
  make ~m_eff:b.m_eff pts

let classical_turning_points b ~energy =
  (* scan nodes for first/last crossing of V = energy *)
  let n = Array.length b.nodes in
  let above x = height_at b x > energy in
  let x0 = fst b.nodes.(0) and xn = fst b.nodes.(n - 1) in
  (* sample finely to locate crossings robustly on piecewise-linear data *)
  let samples = 1024 in
  let xs = Array.init (samples + 1) (fun i -> x0 +. ((xn -. x0) *. float_of_int i /. float_of_int samples)) in
  let first = ref None and last = ref None in
  Array.iter
    (fun x ->
       if above x then begin
         if Option.is_none !first then first := Some x;
         last := Some x
       end)
    xs;
  match !first, !last with
  | Some a, Some b' ->
    (* refine each edge by bisection on [V(x) - energy] *)
    let refine lo hi =
      let lo = ref lo and hi = ref hi in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if above mid = above !lo then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    in
    let step = (xn -. x0) /. float_of_int samples in
    let left = if a -. step < x0 then a else refine (a -. step) a in
    let right = if b' +. step > xn then b' else refine (b' +. step) b' in
    Some (left, right)
  | _ -> None
