module C = Gnrflash_physics.Constants
module U = Gnrflash_units
module Roots = Gnrflash_numerics.Roots
module Tel = Gnrflash_telemetry.Telemetry

type params = {
  a : float;
  b : float;
  phi_b_ev : float;
  m_ox_rel : float;
}

let a_qty p = U.fn_a p.a
let b_qty p = U.v_per_m p.b

let coefficients_q ~phi_b ~m_ox_rel =
  if U.(phi_b <=@ zero) then invalid_arg "Fn.coefficients: phi_b <= 0";
  if m_ox_rel <= 0. then invalid_arg "Fn.coefficients: m_ox <= 0";
  let phi_j = U.to_float (U.ev_to_joule phi_b) in
  let m_ox = m_ox_rel *. C.m0 in
  let a = C.q ** 3. *. C.m0 /. (8. *. Float.pi *. C.h *. m_ox *. phi_j) in
  let b = 8. *. Float.pi *. sqrt (2. *. m_ox) *. (phi_j ** 1.5) /. (3. *. C.q *. C.h) in
  { a; b; phi_b_ev = U.to_float phi_b; m_ox_rel }

let coefficients ~phi_b_ev ~m_ox_rel = coefficients_q ~phi_b:(U.ev phi_b_ev) ~m_ox_rel

let of_interface electrode oxide =
  let phi_b_ev = Gnrflash_materials.Workfunction.barrier_height electrode oxide in
  if phi_b_ev <= 0. then invalid_arg "Fn.of_interface: non-positive barrier";
  coefficients ~phi_b_ev ~m_ox_rel:oxide.Gnrflash_materials.Oxide.m_ox

let current_density_q p ~field =
  if U.(field <=@ zero) then U.a_per_m2 0.
  else
    let quad = U.(a_qty p *@ field *@ field) in
    U.scale (exp (-.U.ratio (b_qty p) field)) quad

let current_density p ~field =
  U.to_float (current_density_q p ~field:(U.v_per_m field))

let current_from_voltages_q p ~vfg ~vs ~xto =
  if U.(xto <=@ zero) then invalid_arg "Fn.current_from_voltages: xto <= 0";
  let v = U.(vfg -@ vs) in
  if U.(v <=@ zero) then U.a_per_m2 0.
  else current_density_q p ~field:U.(v /@ xto)

let current_from_voltages p ~vfg ~vs ~xto =
  U.to_float
    (current_from_voltages_q p ~vfg:(U.volt vfg) ~vs:(U.volt vs) ~xto:(U.metre xto))

let paper_eq7 p ~vfg ~xto = current_from_voltages p ~vfg ~vs:0. ~xto

(* Total on the full real line, mirroring [current_density]: a non-positive
   field carries no forward injection, so J = 0 and log10 J = -inf. *)
let log10_current p ~field =
  if field <= 0. then neg_infinity
  else log10 p.a +. (2. *. log10 field) -. (p.b /. field /. log 10.)

let log10_current_q p ~field = log10_current p ~field:(U.to_float field)

let field_for_current p ~j =
  if j <= 0. then Error "Fn.field_for_current: j <= 0"
  else
    Tel.span "fn/field_for_current" @@ fun () -> begin
    (* solve log10 J(E) = log10 j; ln J is monotone increasing in E *)
    let target = log10 j in
    let f e = log10_current p ~field:e -. target in
    (* initial guess: ignore the E² factor, E ~ B / ln(A E²/j) — just bracket
       geometrically from a field where J is tiny to one where it is huge. *)
    let to_string = Gnrflash_resilience.Solver_error.to_string in
    match Roots.bracket_root f (p.b /. 100.) (p.b *. 2.) with
    | Error e -> Error (to_string e)
    | Ok (lo, hi) ->
      (match Roots.brent f lo hi with
       | Ok e -> Ok e
       | Error e -> Error (to_string e))
    end
