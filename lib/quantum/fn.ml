module C = Gnrflash_physics.Constants
module Roots = Gnrflash_numerics.Roots

type params = {
  a : float;
  b : float;
  phi_b_ev : float;
  m_ox_rel : float;
}

let coefficients ~phi_b_ev ~m_ox_rel =
  if phi_b_ev <= 0. then invalid_arg "Fn.coefficients: phi_b <= 0";
  if m_ox_rel <= 0. then invalid_arg "Fn.coefficients: m_ox <= 0";
  let phi_j = phi_b_ev *. C.ev in
  let m_ox = m_ox_rel *. C.m0 in
  let a = C.q ** 3. *. C.m0 /. (8. *. Float.pi *. C.h *. m_ox *. phi_j) in
  let b = 8. *. Float.pi *. sqrt (2. *. m_ox) *. (phi_j ** 1.5) /. (3. *. C.q *. C.h) in
  { a; b; phi_b_ev; m_ox_rel }

let of_interface electrode oxide =
  let phi_b_ev = Gnrflash_materials.Workfunction.barrier_height electrode oxide in
  if phi_b_ev <= 0. then invalid_arg "Fn.of_interface: non-positive barrier";
  coefficients ~phi_b_ev ~m_ox_rel:oxide.Gnrflash_materials.Oxide.m_ox

let current_density p ~field =
  if field <= 0. then 0.
  else p.a *. field *. field *. exp (-.p.b /. field)

let current_from_voltages p ~vfg ~vs ~xto =
  if xto <= 0. then invalid_arg "Fn.current_from_voltages: xto <= 0";
  let v = vfg -. vs in
  if v <= 0. then 0. else current_density p ~field:(v /. xto)

let paper_eq7 p ~vfg ~xto = current_from_voltages p ~vfg ~vs:0. ~xto

let log10_current p ~field =
  if field <= 0. then invalid_arg "Fn.log10_current: field <= 0";
  log10 p.a +. (2. *. log10 field) -. (p.b /. field /. log 10.)

let field_for_current p ~j =
  if j <= 0. then Error "Fn.field_for_current: j <= 0"
  else begin
    (* solve log10 J(E) = log10 j; ln J is monotone increasing in E *)
    let target = log10 j in
    let f e = log10_current p ~field:e -. target in
    (* initial guess: ignore the E² factor, E ~ B / ln(A E²/j) — just bracket
       geometrically from a field where J is tiny to one where it is huge. *)
    let to_string = Gnrflash_resilience.Solver_error.to_string in
    match Roots.bracket_root f (p.b /. 100.) (p.b *. 2.) with
    | Error e -> Error (to_string e)
    | Ok (lo, hi) ->
      (match Roots.brent f lo hi with
       | Ok e -> Ok e
       | Error e -> Error (to_string e))
  end
