module C = Gnrflash_physics.Constants
module F = Gnrflash_physics.Fermi
module Quad = Gnrflash_numerics.Quadrature
module Tel = Gnrflash_telemetry.Telemetry

type transmission_model =
  | Wkb_model
  | Transfer_matrix_model of int
  | Exact_airy

(* The barrier shape is fixed across the whole supply-function integral —
   only the energy varies between quadrature nodes — so the T(E) evaluator
   is built once per [current_density] call: the trapezoid is constructed a
   single time and, for the WKB model, the closed-form segment cache
   ({!Wkb.Cache}) replaces one adaptive-Simpson recursion per node. The
   [~wkb_cache:false] path runs the same closed-form arithmetic uncached
   (bit-identical results; only the telemetry counters differ). *)
let transmission_fn ~model ~wkb_cache ~phi_b ~field ~thickness ~m_b =
  match model with
  | Wkb_model ->
    let b = Barrier.trapezoidal ~phi_b ~v_ox:(field *. thickness) ~thickness ~m_eff:m_b in
    if wkb_cache then begin
      let cache = Wkb.Cache.make b in
      fun energy -> Wkb.Cache.transmission cache ~energy
    end
    else fun energy -> Wkb.transmission_closed b ~energy
  | Transfer_matrix_model steps ->
    let b = Barrier.trapezoidal ~phi_b ~v_ox:(field *. thickness) ~thickness ~m_eff:m_b in
    fun energy -> Transfer_matrix.transmission ~steps b ~energy
  | Exact_airy ->
    let phi2 = phi_b -. (C.q *. field *. thickness) in
    fun energy ->
      Triangular_exact.transmission ~phi1:phi_b ~phi2 ~thickness ~m_b ~m_e:C.m0 ~energy

let current_density ?(model = Wkb_model) ?(temp = C.room_temperature)
    ?(wkb_cache = true) ~phi_b ~field ~thickness ~m_b ~ef () =
  if field <= 0. then 0.
  else begin
    Tel.span "tsu_esaki/current_density" @@ fun () ->
    let transmission_at =
      transmission_fn ~model ~wkb_cache ~phi_b ~field ~thickness ~m_b
    in
    let qv = C.q *. field *. thickness in
    (* lint: allow L4 — the Tsu–Esaki supply prefactor q·m0·kB/(2π²ħ³) has
       no name in the units-layer per-algebra; kept as a raw SI product *)
    let prefactor = C.q *. C.m0 *. C.k_b *. temp
                    /. (2. *. Float.pi *. Float.pi *. (C.hbar ** 3.)) in
    (* N(E) includes the kT ln(...) factor; supply_difference already
       multiplies by kT, so divide the prefactor's kT back out. *)
    let prefactor = prefactor /. (C.k_b *. temp) in
    let integrand e =
      let t = transmission_at e in
      if t <= 0. then 0.
      else t *. F.supply_difference ~ef ~t:temp ~qv e
    in
    let kt = C.k_b *. temp in
    let e_max = max (phi_b +. (10. *. kt)) (ef +. (20. *. kt)) in
    (* The integrand is sharply peaked near ef for thick barriers; split the
       range so the quadrature resolves it. *)
    let split = min ef e_max in
    let j1 =
      if split > 1e-25 then Quad.gauss_legendre ~order:48 integrand 1e-25 split else 0.
    in
    let j2 = Quad.gauss_legendre ~order:64 integrand (max split 1e-25) e_max in
    prefactor *. (j1 +. j2)
  end

let compare_models ?temp ~phi_b ~field ~thickness ~m_b ~ef () =
  let run model =
    current_density ?temp ~model ~phi_b ~field ~thickness ~m_b ~ef ()
  in
  let fn_params =
    Fn.coefficients ~phi_b_ev:(phi_b /. C.ev) ~m_ox_rel:(m_b /. C.m0)
  in
  [
    ("tsu-esaki/wkb", run Wkb_model);
    ("tsu-esaki/transfer-matrix", run (Transfer_matrix_model 400));
    ("tsu-esaki/exact-airy", run Exact_airy);
    ("fn-closed-form", Fn.current_density fn_params ~field);
  ]
