let current_density (p : Fn.params) ~v_ox ~thickness =
  if thickness <= 0. then invalid_arg "Direct_tunneling: thickness <= 0";
  if v_ox <= 0. then 0.
  else begin
    let field = v_ox /. thickness in
    let x = v_ox /. p.Fn.phi_b_ev in
    if x >= 1. then Fn.current_density p ~field
    else begin
      let reduction = 1. -. ((1. -. x) ** 1.5) in
      p.Fn.a *. field *. field *. exp (-.p.Fn.b *. reduction /. field)
    end
  end

let ratio_to_fn p ~v_ox ~thickness =
  if v_ox <= 0. then 1.
  else begin
    let field = v_ox /. thickness in
    let j_fn = Fn.current_density p ~field in
    if Float.equal j_fn 0. then infinity
    else current_density p ~v_ox ~thickness /. j_fn
  end
