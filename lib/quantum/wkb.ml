module C = Gnrflash_physics.Constants
module Quad = Gnrflash_numerics.Quadrature
module Tel = Gnrflash_telemetry.Telemetry

let action_integral b ~energy =
  match Barrier.classical_turning_points b ~energy with
  | None -> 0.
  | Some (x1, x2) ->
    let integrand x =
      let v = Barrier.height_at b x -. energy in
      if v <= 0. then 0. else sqrt (2. *. b.Barrier.m_eff *. v)
    in
    (* absolute tolerance scaled to the integral's natural magnitude
       k_max * width, which is ~1e-33 in SI units *)
    let v_max = Barrier.max_height b -. energy in
    let scale = sqrt (2. *. b.Barrier.m_eff *. max v_max 1e-30) *. (x2 -. x1) in
    let k =
      Tel.span "wkb/action_integral" @@ fun () ->
      Quad.adaptive_simpson ~tol:(1e-9 *. scale) integrand x1 x2
    in
    2. /. C.hbar *. k

let transmission b ~energy =
  let a = action_integral b ~energy in
  if a <= 0. then 1. else exp (-.a)

let transmission_triangular ~phi_b ~field ~m_eff =
  if phi_b <= 0. || field <= 0. || m_eff <= 0. then
    invalid_arg "Wkb.transmission_triangular: non-positive argument";
  let b_exp =
    4. *. sqrt (2. *. m_eff) *. (phi_b ** 1.5) /. (3. *. C.hbar *. C.q *. field)
  in
  exp (-.b_exp)

(* ---------- closed-form action on the piecewise-linear barrier ---------- *)

(* A [Barrier.t] is piecewise linear by construction, so on each segment
   the action integrand √(2m(V−E)) integrates in closed form:

     ∫ √(V−E) dx = (2/3)·[(V_b−E)^{3/2} − (V_a−E)^{3/2}] / slope

   (clamping endpoint heights below E to zero handles the classical
   turning point landing inside the segment — the (·)^{3/2} term of the
   sub-threshold endpoint simply vanishes). Flat segments reduce to
   width·√(V−E). The sum over segments equals the adaptive
   {!action_integral} to its quadrature tolerance but is exact, costs
   O(segments) with no function evaluations, and — being a pure function
   of the node table — is bit-reproducible, which is what lets the
   memoized and uncached {!Tsu_esaki.current_density} paths agree
   bit-for-bit. *)

module Cache = struct
  type seg = {
    width : float;
    va : float;
    vb : float;
    slope : float;
  }

  type t = {
    segs : seg array;
    sqrt2m : float;
    v_max : float;
  }

  let make b =
    Tel.count "wkb/cache_build";
    let nodes = b.Barrier.nodes in
    let segs =
      Array.init
        (Array.length nodes - 1)
        (fun i ->
          let xa, va = nodes.(i) and xb, vb = nodes.(i + 1) in
          let width = xb -. xa in
          { width; va; vb; slope = (vb -. va) /. width })
    in
    { segs; sqrt2m = sqrt (2. *. b.Barrier.m_eff); v_max = Barrier.max_height b }

  let seg_action ~sqrt2m ~energy s =
    let ua = s.va -. energy and ub = s.vb -. energy in
    if ua <= 0. && ub <= 0. then 0.
    else if Float.equal s.slope 0. then s.width *. sqrt2m *. sqrt ua
    else
      let fa = if ua > 0. then ua *. sqrt ua else 0. in
      let fb = if ub > 0. then ub *. sqrt ub else 0. in
      sqrt2m *. (2. /. 3.) *. ((fb -. fa) /. s.slope)

  let raw_action c ~energy =
    if energy >= c.v_max then 0.
    else begin
      let acc = ref 0. in
      Array.iter (fun s -> acc := !acc +. seg_action ~sqrt2m:c.sqrt2m ~energy s) c.segs;
      2. /. C.hbar *. !acc
    end

  let action c ~energy =
    Tel.count "wkb/cache_hit";
    raw_action c ~energy

  let transmission c ~energy =
    let a = action c ~energy in
    if a <= 0. then 1. else exp (-.a)
end

(* One-shot closed-form path: same arithmetic as the cache (so results are
   bit-identical), but rebuilt per call and deliberately uncounted — this
   is what [~wkb_cache:false] exercises. *)
let transmission_closed b ~energy =
  let nodes = b.Barrier.nodes in
  let sqrt2m = sqrt (2. *. b.Barrier.m_eff) in
  let acc = ref 0. in
  for i = 0 to Array.length nodes - 2 do
    let xa, va = nodes.(i) and xb, vb = nodes.(i + 1) in
    let width = xb -. xa in
    let s = { Cache.width; va; vb; slope = (vb -. va) /. width } in
    acc := !acc +. Cache.seg_action ~sqrt2m ~energy s
  done;
  let a = if energy >= Barrier.max_height b then 0. else 2. /. C.hbar *. !acc in
  if a <= 0. then 1. else exp (-.a)
