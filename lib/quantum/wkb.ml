module C = Gnrflash_physics.Constants
module Quad = Gnrflash_numerics.Quadrature
module Tel = Gnrflash_telemetry.Telemetry

let action_integral b ~energy =
  match Barrier.classical_turning_points b ~energy with
  | None -> 0.
  | Some (x1, x2) ->
    let integrand x =
      let v = Barrier.height_at b x -. energy in
      if v <= 0. then 0. else sqrt (2. *. b.Barrier.m_eff *. v)
    in
    (* absolute tolerance scaled to the integral's natural magnitude
       k_max * width, which is ~1e-33 in SI units *)
    let v_max = Barrier.max_height b -. energy in
    let scale = sqrt (2. *. b.Barrier.m_eff *. max v_max 1e-30) *. (x2 -. x1) in
    let k =
      Tel.span "wkb/action_integral" @@ fun () ->
      Quad.adaptive_simpson ~tol:(1e-9 *. scale) integrand x1 x2
    in
    2. /. C.hbar *. k

let transmission b ~energy =
  let a = action_integral b ~energy in
  if a <= 0. then 1. else exp (-.a)

let transmission_triangular ~phi_b ~field ~m_eff =
  if phi_b <= 0. || field <= 0. || m_eff <= 0. then
    invalid_arg "Wkb.transmission_triangular: non-positive argument";
  let b_exp =
    4. *. sqrt (2. *. m_eff) *. (phi_b ** 1.5) /. (3. *. C.hbar *. C.q *. field)
  in
  exp (-.b_exp)
