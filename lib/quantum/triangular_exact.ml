module C = Gnrflash_physics.Constants
module Sp = Gnrflash_numerics.Special

(* Rectangular barrier of height v, width d, with mass mismatch. *)
let rectangular ~v ~thickness ~m_b ~m_e ~energy =
  if energy >= v then 1.
  else begin
    let kappa = sqrt (2. *. m_b *. (v -. energy)) /. C.hbar in
    let k = sqrt (2. *. m_e *. energy) /. C.hbar in
    let eta = kappa *. m_e /. (k *. m_b) in
    let s = sinh (kappa *. thickness) in
    let t = 4. /. (4. +. ((eta +. (1. /. eta)) ** 2.) *. s *. s) in
    if t < 0. then 0. else min t 1.
  end

(* Gundlach (1966) matching: inside the barrier psi = a Ai(y) + b Bi(y) with
   y(x) = (V(x) - E)/eps and eps = (hbar^2 q^2 F^2 / 2 m_b)^(1/3); plane
   waves outside; continuity of psi and psi'/m at both interfaces. Using the
   Airy Wronskian Ai Bi' - Ai' Bi = 1/pi, the transmitted amplitude obeys
     2 = pi t [(Bi'(y2) + i mu2 Bi(y2)) (Ai(y1) + i Ai'(y1)/mu1)
               - (Ai'(y2) + i mu2 Ai(y2)) (Bi(y1) + i Bi'(y1)/mu1)]
   with mu_i = k_i eps m_b / (q F m_e), and T = |t|^2 k2/k1. *)
let rec transmission ~phi1 ~phi2 ~thickness ~m_b ~m_e ~energy =
  if energy <= 0. then 0.
  else if thickness <= 0. then 1.
  else begin
    let drop = phi1 -. phi2 in
    if abs_float drop < 1e-3 *. C.ev *. 1e-6 then
      rectangular ~v:phi1 ~thickness ~m_b ~m_e ~energy
    else if drop < 0. then
      (* rising barrier: evaluate the mirrored geometry (time-reversal
         symmetry of the two-terminal transmission at equal total energy) *)
      transmission ~phi1:phi2 ~phi2:phi1 ~thickness ~m_b ~m_e
        ~energy:(energy -. phi2 +. phi1 |> max 1e-30)
    else begin
      let field = drop /. (C.q *. thickness) in
      let eps = (C.hbar ** 2. *. ((C.q *. field) ** 2.) /. (2. *. m_b)) ** (1. /. 3.) in
      let y1 = (phi1 -. energy) /. eps in
      let y2 = (phi2 -. energy) /. eps in
      let k1 = sqrt (2. *. m_e *. energy) /. C.hbar in
      let e_exit = energy -. phi2 in
      if e_exit <= 0. then 0.
      else begin
        let k2 = sqrt (2. *. m_e *. e_exit) /. C.hbar in
        let mu = eps *. m_b /. (C.q *. field *. m_e) in
        let mu1 = k1 *. mu and mu2 = k2 *. mu in
        let a1, a1', b1, b1' = Sp.airy_all y1 in
        let a2, a2', b2, b2' = Sp.airy_all y2 in
        let open Complex in
        let i = { re = 0.; im = 1. } in
        let cb2 = add { re = b2'; im = 0. } (mul i { re = mu2 *. b2; im = 0. }) in
        let ca2 = add { re = a2'; im = 0. } (mul i { re = mu2 *. a2; im = 0. }) in
        let ca1 = add { re = a1; im = 0. } (mul i { re = a1' /. mu1; im = 0. }) in
        let cb1 = add { re = b1; im = 0. } (mul i { re = b1' /. mu1; im = 0. }) in
        let bracket = Complex.sub (mul cb2 ca1) (mul ca2 cb1) in
        let modulus = norm bracket *. Float.pi /. 2. in
        if Float.equal modulus 0. then 1.
        else begin
          let t = k2 /. k1 /. (modulus *. modulus) in
          if Float.is_nan t || t < 0. then 0. else min t 1.
        end
      end
    end
  end

let transmission_fn ~phi_b ~field ~thickness ~m_b ~m_e ~energy =
  if field <= 0. then invalid_arg "Triangular_exact.transmission_fn: field <= 0";
  let phi2 = phi_b -. (C.q *. field *. thickness) in
  transmission ~phi1:phi_b ~phi2 ~thickness ~m_b ~m_e ~energy
