(** Fowler–Nordheim tunneling current density — the closed form the paper's
    equations (1), (4), (6), (7) are built on (Lenzlinger & Snow 1969).

    [J = A·E²·exp(−B/E)] with
    [A = q³·m0 / (8π·h·m_ox·Φ_B)]  (A/V²) and
    [B = 8π·√(2 m_ox)·Φ_B^{3/2} / (3 q h)]  (V/m),
    Φ_B in joules inside the formulas, quoted in eV at the API.

    The [_q] entry points are the unit-typed primaries
    ({!Gnrflash_units}): barrier heights are [ev qty], fields [v_per_m
    qty], currents [a_per_m2 qty] — passing e.g. a [volt qty] where a
    field is expected fails to compile. The raw-float functions are thin
    boundary shims over them and return bit-identical values. *)

type params = {
  a : float;        (** prefactor A [A/V²] *)
  b : float;        (** exponent coefficient B [V/m] *)
  phi_b_ev : float; (** barrier height used to build the coefficients [eV] *)
  m_ox_rel : float; (** effective tunneling mass in units of m0 *)
}

val a_qty : params -> Gnrflash_units.fn_a Gnrflash_units.qty
(** The prefactor as a typed A/m² per (V/m)² quantity. *)

val b_qty : params -> Gnrflash_units.v_per_m Gnrflash_units.qty
(** The exponent coefficient as a typed field. *)

val coefficients_q :
  phi_b:Gnrflash_units.ev Gnrflash_units.qty -> m_ox_rel:float -> params
(** Build FN coefficients from a typed barrier height (eV — converted to
    joules internally via the one sanctioned
    {!Gnrflash_units.ev_to_joule} crossing) and relative effective mass.
    @raise Invalid_argument for non-positive arguments. *)

val coefficients : phi_b_ev:float -> m_ox_rel:float -> params
(** Raw-float shim over {!coefficients_q}.
    @raise Invalid_argument for non-positive arguments. *)

val of_interface : Gnrflash_materials.Workfunction.electrode ->
  Gnrflash_materials.Oxide.t -> params
(** Coefficients for a given electrode/oxide interface, deriving Φ_B from
    the work function and electron affinity, and m_ox from the oxide. *)

val current_density_q :
  params -> field:Gnrflash_units.v_per_m Gnrflash_units.qty ->
  Gnrflash_units.a_per_m2 Gnrflash_units.qty
(** Current density at an oxide field; [0.] for non-positive fields (the
    formula describes forward injection only — callers handle polarity). *)

val current_density : params -> field:float -> float
(** Raw shim over {!current_density_q}: [A/m²] at [field] [V/m]. *)

val current_from_voltages_q :
  params -> vfg:Gnrflash_units.volt Gnrflash_units.qty ->
  vs:Gnrflash_units.volt Gnrflash_units.qty ->
  xto:Gnrflash_units.metre Gnrflash_units.qty ->
  Gnrflash_units.a_per_m2 Gnrflash_units.qty
(** Paper equation (6): field [E = (VFG − VS)/XTO], then
    {!current_density_q}. Returns [0.] when [vfg <= vs].
    @raise Invalid_argument when [xto <= 0]. *)

val current_from_voltages : params -> vfg:float -> vs:float -> xto:float -> float
(** Raw shim over {!current_from_voltages_q}; [xto] in metres. *)

val paper_eq7 : params -> vfg:float -> xto:float -> float
(** Paper equation (7): the [VS = 0] special case. *)

val field_for_current : params -> j:float -> (float, string) result
(** Invert [J(E)]: the field [V/m] at which the current density reaches
    [j] [A/m²] (Newton on ln J, monotone for E > 0). *)

val log10_current : params -> field:float -> float
(** [log10 (J)] computed in log space — usable even where [J] underflows a
    float. Total on the full real line: non-positive fields return
    [neg_infinity], consistent with {!current_density} returning [0.]
    there ([10^(-inf) = 0]). *)

val log10_current_q :
  params -> field:Gnrflash_units.v_per_m Gnrflash_units.qty -> float
(** Typed view of {!log10_current} (the result is a dimensionless
    log-magnitude, hence a plain float). *)
