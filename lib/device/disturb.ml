type config = {
  v_disturb : float;
  pulse_width : float;
}

let half_select ~vgs_program ~pulse_width = { v_disturb = vgs_program /. 2.; pulse_width }

let default_config = half_select ~vgs_program:15. ~pulse_width:10e-6

(* The disturb bias is constant across events, so n events of width w are
   one transient of duration n*w. *)
let run_events ?(config = default_config) t ~qfg0 ~events =
  if events < 0 then Error "Disturb: negative events"
  else begin
    let duration = float_of_int events *. config.pulse_width in
    if duration <= 0. then Ok None
    else
      match Transient.run ~qfg0 t ~vgs:config.v_disturb ~duration with
      | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
      | Ok r -> Ok (Some r)
  end

let dvt_after_events ?config t ~qfg0 ~events =
  match run_events ?config t ~qfg0 ~events with
  | Error e -> Error e
  | Ok None -> Ok (Fgt.threshold_shift t ~qfg:qfg0)
  | Ok (Some r) -> Ok r.Transient.dvt_final

let qfg_after_events ?config t ~qfg0 ~events =
  match run_events ?config t ~qfg0 ~events with
  | Error e -> Error e
  | Ok None -> Ok qfg0
  | Ok (Some r) -> Ok r.Transient.qfg_final

let events_to_failure ?(config = default_config) t ~qfg0 ~dvt_fail ~max_events =
  if dvt_fail <= 0. then Error "Disturb.events_to_failure: dvt_fail <= 0"
  else begin
    let rec search n =
      if n > max_events then Ok None
      else
        match dvt_after_events ~config t ~qfg0 ~events:n with
        | Error e -> Error e
        | Ok dvt ->
          if dvt >= dvt_fail then begin
            (* binary refine between n/2 and n *)
            let lo = ref (n / 2) and hi = ref n in
            let err = ref None in
            while !hi - !lo > 1 && Option.is_none !err do
              let mid = (!lo + !hi) / 2 in
              match dvt_after_events ~config t ~qfg0 ~events:mid with
              | Error e -> err := Some e
              | Ok d -> if d >= dvt_fail then hi := mid else lo := mid
            done;
            match !err with Some e -> Error e | None -> Ok (Some !hi)
          end
          else search (n * 2)
    in
    search 1
  end
