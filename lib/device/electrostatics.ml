module C = Gnrflash_physics.Constants
module L = Gnrflash_numerics.Linalg
module U = Gnrflash_units

type stack = {
  xco : float;
  xto : float;
  eps_r_co : float;
  eps_r_to : float;
  nodes_per_layer : int;
}

let of_fgt ?(nodes_per_layer = 50) (t : Fgt.t) =
  {
    xco = t.Fgt.xco;
    xto = t.Fgt.xto;
    eps_r_co = 3.9;
    eps_r_to = 3.9;
    nodes_per_layer;
  }

type solution = {
  x : float array;
  potential : float array;
  vfg : float;
  field_tunnel : float;
  field_control : float;
}

(* Finite differences for d/dx (eps dV/dx) = -rho with a sheet charge at
   the floating-gate node. Nodes: 0 .. n-1 spanning [0, xco + xto]; node
   [m = nodes_per_layer] is the FG plane. Dirichlet: V(0) = vgs,
   V(n-1) = vs. *)
let solve stack ~vgs ~vs ~sigma_fg =
  let m = stack.nodes_per_layer in
  if m < 2 then Error "Electrostatics.solve: too few nodes"
  else begin
    let n = (2 * m) + 1 in
    let h_co = stack.xco /. float_of_int m in
    let h_to = stack.xto /. float_of_int m in
    let eps_co = C.eps0 *. stack.eps_r_co in
    let eps_to = C.eps0 *. stack.eps_r_to in
    (* unknowns: interior nodes 1 .. n-2 *)
    let dim = n - 2 in
    let sub = Array.make dim 0. and diag = Array.make dim 0. and sup = Array.make dim 0. in
    let rhs = Array.make dim 0. in
    (* flux coefficient between node i and i+1 *)
    let coupling i =
      (* segment i -> i+1 lies in the control oxide when i < m *)
      if i < m then eps_co /. h_co else eps_to /. h_to
    in
    for row = 0 to dim - 1 do
      let i = row + 1 in
      let c_left = coupling (i - 1) and c_right = coupling i in
      diag.(row) <- -.(c_left +. c_right);
      if row > 0 then sub.(row) <- c_left;
      if row < dim - 1 then sup.(row) <- c_right;
      (* sheet charge at the FG node *)
      if i = m then rhs.(row) <- rhs.(row) -. sigma_fg;
      (* boundary contributions *)
      if i = 1 then rhs.(row) <- rhs.(row) -. (c_left *. vgs);
      if i = n - 2 then rhs.(row) <- rhs.(row) -. (c_right *. vs)
    done;
    match L.solve_tridiag ~sub ~diag ~sup rhs with
    | Error e -> Error e
    | Ok interior ->
      let potential = Array.make n 0. in
      potential.(0) <- vgs;
      potential.(n - 1) <- vs;
      Array.blit interior 0 potential 1 dim;
      let x =
        Array.init n (fun i ->
            if i <= m then float_of_int i *. h_co
            else stack.xco +. (float_of_int (i - m) *. h_to))
      in
      let vfg = potential.(m) in
      let field_tunnel = (vfg -. vs) /. stack.xto in
      let field_control = (vgs -. vfg) /. stack.xco in
      Ok { x; potential; vfg; field_tunnel; field_control }
  end

let areal_cap ~eps_r ~thickness =
  (* ε₀εᵣ/t [F/m²] — the (F/m)/m intermediate has no name in the
     per-algebra, so this constructor is the sanctioned boundary. *)
  U.f_per_m2 (C.eps0 *. eps_r /. thickness)

let vfg_divider_q stack ~vgs ~vs ~sigma_fg =
  let c_co = areal_cap ~eps_r:stack.eps_r_co ~thickness:stack.xco in
  let c_to = areal_cap ~eps_r:stack.eps_r_to ~thickness:stack.xto in
  let num =
    U.(areal_displacement c_co ~v:vgs +@ areal_displacement c_to ~v:vs +@ sigma_fg)
  in
  U.voltage_across_areal num U.(c_co +@ c_to)

let vfg_divider stack ~vgs ~vs ~sigma_fg =
  U.to_float
    (vfg_divider_q stack ~vgs:(U.volt vgs) ~vs:(U.volt vs)
       ~sigma_fg:(U.c_per_m2 sigma_fg))

let vfg_qty sol = U.volt sol.vfg
let field_tunnel_qty sol = U.v_per_m sol.field_tunnel
let field_control_qty sol = U.v_per_m sol.field_control
