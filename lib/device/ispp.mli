(** Incremental Step Pulse Programming: the program-and-verify loop used by
    production NAND. Each pulse raises VGS by a fixed step; after each
    pulse the threshold is verified against the target. ISPP converts the
    strongly bias-dependent FN speed into a tight, nearly
    one-step-per-pulse ΔVT staircase. *)

type config = {
  v_start : float;     (** first-pulse bias [V] *)
  v_step : float;      (** per-pulse increment [V] *)
  v_max : float;       (** abort bias [V] *)
  pulse_width : float; (** s *)
  target_dvt : float;  (** verify level [V] *)
}

val default : config
(** 12 V start, 0.5 V steps up to 20 V, 10 µs pulses, 2 V target. *)

type step = {
  pulse_index : int;
  vgs : float;
  dvt : float;      (** threshold shift after this pulse *)
  qfg : float;
}

type result = {
  steps : step list;       (** in pulse order *)
  passed : bool;           (** verify succeeded before hitting v_max *)
  pulses_used : int;
}

val run :
  ?config:config -> ?surrogate:bool ->
  Fgt.t -> qfg0:float -> (result, string) Stdlib.result
(** Run the program-and-verify loop from the given initial charge.
    [surrogate] is passed through to {!Program_erase.apply_pulse}; steps
    whose bias climbs past the operating box (the default config tops out
    at 20 V) fall back to the exact solver automatically. *)

val dvt_per_pulse_tail : result -> float list
(** ΔVT increments of the staircase after the first verify-visible pulse —
    in steady state each increment approaches [v_step] (the classic ISPP
    signature; tested as a property). *)
