type config = {
  v_start : float;
  v_step : float;
  v_max : float;
  pulse_width : float;
  target_dvt : float;
}

let default =
  { v_start = 12.; v_step = 0.5; v_max = 20.; pulse_width = 10e-6; target_dvt = 2. }

type step = {
  pulse_index : int;
  vgs : float;
  dvt : float;
  qfg : float;
}

type result = {
  steps : step list;
  passed : bool;
  pulses_used : int;
}

let run ?(config = default) ?surrogate t ~qfg0 =
  if config.v_step <= 0. then Error "Ispp.run: v_step <= 0"
  else if config.pulse_width <= 0. then Error "Ispp.run: pulse_width <= 0"
  else begin
    let rec loop idx vgs qfg acc =
      if vgs > config.v_max then
        Ok { steps = List.rev acc; passed = false; pulses_used = idx }
      else begin
        let pulse = { Program_erase.vgs; duration = config.pulse_width } in
        match Program_erase.apply_pulse ?surrogate t ~qfg pulse with
        | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
        | Ok o ->
          let s =
            {
              pulse_index = idx;
              vgs;
              dvt = o.Program_erase.dvt_after;
              qfg = o.Program_erase.qfg_after;
            }
          in
          if o.Program_erase.dvt_after >= config.target_dvt then
            Ok { steps = List.rev (s :: acc); passed = true; pulses_used = idx + 1 }
          else
            loop (idx + 1) (vgs +. config.v_step) o.Program_erase.qfg_after (s :: acc)
      end
    in
    loop 0 config.v_start qfg0 []
  end

let dvt_per_pulse_tail r =
  let dvts = List.map (fun s -> s.dvt) r.steps in
  let rec increments = function
    | a :: (b :: _ as rest) -> (b -. a) :: increments rest
    | _ -> []
  in
  match dvts with
  | [] | [ _ ] -> []
  | _ ->
    (* drop the leading ramp-up pulses that produce negligible shift *)
    increments dvts
    |> List.filter (fun d -> d > 1e-3)
