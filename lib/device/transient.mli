(** Program/erase charge-balance transient (paper Figures 4 and 5).

    The stored charge obeys [dQFG/dt = −A·(Jin − Jout)] with both current
    densities re-evaluated from equation (3) as the charge builds up. The
    dynamics approach the fixed point [Jin = Jout] asymptotically; following
    the paper we report [tsat] as the time where the normalized imbalance
    [(Jin − Jout)/(Jin + Jout)] first falls below a threshold (default 1 %).

    Failures are typed [Gnrflash_resilience.Solver_error.t] values; each
    solve runs a {!Gnrflash_resilience.Fallback} escalation ladder (e.g.
    tolerance relaxation, re-bracketing) before giving up, recorded under
    the [resilience/...] telemetry counters. An optional [?budget] bounds
    wall clock / function evaluations for the whole solve. *)

type error = Gnrflash_resilience.Solver_error.t

type sample = {
  time : float;   (** s *)
  qfg : float;    (** stored charge [C] *)
  vfg : float;    (** floating-gate potential [V] *)
  j_in : float;   (** electron injection [A/m²] *)
  j_out : float;  (** electron extraction [A/m²] *)
}

type result = {
  samples : sample array;      (** trajectory, increasing time *)
  tsat : float option;         (** saturation time, if reached *)
  qfg_final : float;           (** charge at the end of integration *)
  dvt_final : float;           (** threshold shift at the end *)
  h_first : float option;      (** first accepted step size [s] — feed it
                                   back as [?h0] to warm-start a repeat of
                                   the same pulse *)
}

val run :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?qfg0:float -> ?imbalance_threshold:float -> ?rtol:float -> ?h0:float ->
  Fgt.t -> vgs:float -> duration:float -> (result, error) Stdlib.result
(** Integrate the charge balance for [duration] seconds at constant [vgs]
    (positive = programming, negative = erase) from initial charge [qfg0]
    (default 0, the paper's assumption). Integration stops early at the
    saturation event. [rtol] defaults to [1e-8]; if the integration fails
    at that tolerance a relaxation ladder retries at [rtol·1e2] then
    [min 1e-3 (rtol·1e4)].

    [h0] is the initial trial step size; when omitted (the cold-start
    case) it is derived from the RHS scale at [t = 0] as
    [0.01·CT·(1+|VGS|)/|dQ/dt|] — small enough that the first trial stays
    inside the finite region of the FN exponential, so a nominal run has
    [ode/step_nan_shrink = 0]. Pass the previous pulse's
    {!field-h_first} to warm-start a repeated pulse
    ({!Program_erase.apply_pulse} does this automatically). *)

val initial_currents : Fgt.t -> vgs:float -> qfg:float -> float * float
(** [(Jin, Jout)] at a single operating point — the t = 0 comparison of
    Figure 4. *)

val saturation_charge :
  ?budget:Gnrflash_resilience.Budget.t ->
  Fgt.t -> vgs:float -> (float, error) Stdlib.result
(** The fixed-point charge solving [Jin(q) = Jout(q)] directly by root
    finding — the "maximum charge that can be accumulated" of the paper,
    without running the transient. Falls back from a Brent solve on the
    voltage-divider bracket to [bracket_root] expansion (either side of 0)
    and finally a wide symmetric bisection, so erase-polarity and high-GCR
    devices still solve. *)

val time_to_threshold_shift :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?qfg0:float -> Fgt.t -> vgs:float -> dvt:float -> max_time:float ->
  (float option, error) Stdlib.result
(** Programming time needed to move the threshold by [dvt] volts: the event
    time where [ΔVT(t) = dvt], or [None] if the target exceeds what the
    bias can reach within [max_time]. *)
