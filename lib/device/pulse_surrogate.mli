(** Certified O(1) surrogate for the constant-bias pulse response.

    The charge-balance transient [dQFG/dt = f(QFG)] at fixed [vgs] is
    {e autonomous}: every pulse at the same bias moves along the {e same}
    trajectory [q(t)], only entering it at a different point. One dense
    solve per (device, vgs) therefore collapses the (qfg, duration) axes:

    {v qfg' = Q(T(qfg) + duration)     where T = Q⁻¹ v}

    A table stores the accepted-step samples of that single trajectory as a
    pair of monotone PCHIP interpolants ([t_of_q] and [q_of_t], the pattern
    of {!Gnrflash_quantum.Lookup} lifted from J(E) curves to whole pulse
    responses), so an in-domain query is two O(log n) interpolant
    evaluations instead of an adaptive ODE integration.

    {b Certification contract.} [build] holds out every other accepted
    sample: knots come from the even-indexed samples, and the odd-indexed
    ones become probe points that are never interpolation nodes. The
    build measures the worst {!divergence} of the composed query
    [Q(T(q_i) + (t_j − t_i))] against the held-out exact samples [q_j]
    (plus direct [q_of_t] probes and the saturated tail), and publishes
    [certified_bound = 3 × measured + 2e-6] — headroom for operating
    points between probes and for independent solver-tolerance noise.
    {!query} answers are guaranteed (and property-tested) to stay within
    the bound; anything the table cannot certify returns [None] and the
    caller falls back to the exact solver.

    Telemetry: [surrogate/build] (count + span) per table built,
    [surrogate/hit] per served query, [surrogate/fallback] per consulted
    query that could not be served. *)

type error = Gnrflash_resilience.Solver_error.t

(** {1 Operating box} *)

type box = {
  vgs_abs_min : float;   (** V *)
  vgs_abs_max : float;   (** V *)
  gcr_min : float;
  gcr_max : float;
  xto_min : float;       (** m *)
  xto_max : float;       (** m *)
  duration_min : float;  (** s *)
  duration_max : float;  (** s — also the build's integration horizon *)
}

val paper_box : box
(** The paper's operating range (Figs 5–9): |VGS| ∈ [8, 17] V,
    GCR ∈ [0.45, 0.60], XTO ∈ [5, 9] nm, durations 1 ns … 0.1 s. *)

val in_box : ?box:box -> Fgt.t -> vgs:float -> duration:float -> bool
(** Whether a pulse on this device is inside the (default paper) box.
    Boundary values are inside; device parameters are compared with a tiny
    relative slack so a device {e constructed} at a box corner (whose GCR
    round-trips through the capacitance network) still qualifies. *)

(** {1 Tables} *)

type t
(** One tabulated trajectory: a single (device, vgs) pair. *)

val build :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?box:box -> ?span:float ->
  Fgt.t -> vgs:float -> (t, error) result
(** Solve the trajectory once over [box.duration_max] starting from
    [−span × q_sat] (default [span = 1.5], covering the overshoot range
    that program/erase cycling visits) and certify the table against the
    held-out samples. Runs under [Tel.span "surrogate/build"]. Errors
    are the underlying solver's ([saturation_charge] or the transient
    integration), or [Invalid_input] when the trajectory is degenerate. *)

val certified_bound : t -> float
(** The published relative-divergence bound (see {!divergence}). *)

val max_measured_divergence : t -> float
(** The raw held-out measurement the bound was derived from. *)

val qfg_range : t -> float * float
(** [(q_lo, q_hi)] — initial charges the table serves. The saturated end
    stops strictly {e before} the event charge, so every in-range query
    still has the saturation event ahead of it. *)

val vgs : t -> float
val knot_count : t -> int
val build_seconds : t -> float
(** CPU seconds spent building (trajectory solve + certification). *)

val divergence : t -> exact:float -> approx:float -> float
(** The certification metric: [|approx − exact| / max(|exact|, 1e-3·q_scale)]
    where [q_scale] is the table's charge range. The floor keeps the metric
    meaningful when an erase trajectory crosses [qfg = 0] (where a plain
    relative error blows up on physically negligible absolute error). Tests
    and the bench gate use {e this} function, so the measured and enforced
    quantities are identical by construction. *)

type response = {
  qfg_after : float;
  saturated : bool;  (** the Jin = Jout event lies within the pulse *)
}

val query : t -> qfg:float -> duration:float -> response option
(** Serve one pulse from the table: [None] if [qfg] is outside
    {!qfg_range}, the duration is non-positive, or the pulse runs past an
    unsaturated table's horizon. Monotone PCHIP interpolation preserves
    "longer pulse moves at least as much charge". *)

val saturation_time : t -> qfg:float -> float option
(** Time from charge [qfg] to the saturation event (the Fig 5 [tsat] when
    [qfg = 0]); [None] out of range or if the table never saturates. *)

val time_to_charge : t -> qfg0:float -> qfg1:float -> float option
(** Trajectory time from [qfg0] to [qfg1] (the Fig 5 [ttts] when [qfg1]
    is the 2 V-shift charge); [None] if either end is out of range. *)

(** {1 Cached front door} *)

val set_build_after : int -> unit
(** A table is only built after a (device, vgs) pair has been asked for
    more than this many times (default 2): single-shot queries — e.g. a
    Monte-Carlo sweep touching each device once — fall back to the exact
    solver instead of paying a build they would never amortize. Set 0 to
    build eagerly (the bench does, around its probes). The policy is
    per-domain-deterministic, so parallel sweeps that split work by device
    stay bit-reproducible across [jobs]. *)

val build_after : unit -> int

val cached : Fgt.t -> vgs:float -> t option
(** Peek at this domain's cache without counting, building, or promoting —
    for tests and the bench to reach the serving table's bound. *)

val response_static : ?box:box -> Fgt.t -> vgs:float -> duration:float -> bool
(** Whether {!pulse_response} has become a {e pure} function of [qfg] for
    this (device, vgs, duration) in the calling domain: the pulse never
    enters the box, or the (device, vgs) table slot is settled (built or
    poisoned) so a consult can no longer count toward promotion, build, or
    reset anything. Downstream memo layers ({!Gnrflash_memory.Cell_store})
    use this to decide when an out-of-box outcome may be cached without
    changing how often the promotion counters advance. *)

val pulse_response :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?box:box ->
  Fgt.t -> vgs:float -> duration:float -> qfg:float -> response option
(** The front door {!Program_erase.apply_pulse} uses: in-box pulses are
    served from this domain's table cache (building on promotion, keyed to
    the device by physical identity like the warm-replay cache — a
    different device record resets it); every [None] is a fallback the
    caller must route to the exact solver. Build failures other than
    budget exhaustion poison the (device, vgs) slot so the solver is not
    re-asked every pulse; budget exhaustion is transient and retried. *)
