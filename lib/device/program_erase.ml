module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget

type error = Err.t

type pulse = {
  vgs : float;
  duration : float;
}

type outcome = {
  qfg_before : float;
  qfg_after : float;
  dvt_after : float;
  injected_charge : float;
  saturated : bool;
}

let default_program_pulse = { vgs = 15.; duration = 1e-3 }
let default_erase_pulse = { vgs = -15.; duration = 1e-3 }

let apply_pulse ?budget t ~qfg pulse =
  if pulse.duration <= 0. then
    Error
      (Err.make ~solver:"Program_erase.apply_pulse"
         (Err.Invalid_input "duration <= 0"))
  else Tel.span "program_erase/pulse" @@ fun () ->
    Tel.count "program_erase/pulse";
    match
      Budget.with_opt budget @@ fun () ->
      Transient.run ~qfg0:qfg t ~vgs:pulse.vgs ~duration:pulse.duration
    with
    | Error e -> Error e
    | Ok r ->
      if r.Transient.tsat <> None then Tel.count "program_erase/saturated";
      Ok
        {
          qfg_before = qfg;
          qfg_after = r.Transient.qfg_final;
          dvt_after = r.Transient.dvt_final;
          injected_charge = abs_float (r.Transient.qfg_final -. qfg);
          saturated = r.Transient.tsat <> None;
        }

let program ?budget ?(pulse = default_program_pulse) t ~qfg =
  apply_pulse ?budget t ~qfg pulse

let erase ?budget ?(pulse = default_erase_pulse) t ~qfg =
  apply_pulse ?budget t ~qfg pulse

let cycle ?(program_pulse = default_program_pulse) ?(erase_pulse = default_erase_pulse)
    t ~qfg =
  match program ~pulse:program_pulse t ~qfg with
  | Error e -> Error e
  | Ok p ->
    (match erase ~pulse:erase_pulse t ~qfg:p.qfg_after with
     | Error e -> Error e
     | Ok e -> Ok (p, e))
