module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fault = Gnrflash_resilience.Fault

type error = Err.t

type pulse = {
  vgs : float;
  duration : float;
}

type outcome = {
  qfg_before : float;
  qfg_after : float;
  dvt_after : float;
  injected_charge : float;
  saturated : bool;
}

let default_program_pulse = { vgs = 15.; duration = 1e-3 }
let default_erase_pulse = { vgs = -15.; duration = 1e-3 }

(* ---------- warm-started pulse trains ---------- *)

(* Pulse trains (endurance cycling, program-verify loops) re-solve the same
   transient over and over: successive same-polarity pulses see near-identical
   initial conditions, and once the train settles into its floating-point
   limit cycle the (vgs, duration, qfg) triple repeats *bit-exactly*. Two
   levels of reuse exploit this:

   - step-size warm start: the first accepted step of the previous
     same-polarity pulse seeds the next pulse's [h0], skipping the
     cold-start step-size search ([transient/warm_start_hit]);
   - exact replay: a pulse whose (device, vgs, duration, qfg) key repeats
     bit-for-bit returns the memoized outcome without integrating at all
     ([program_erase/pulse_replay]). The solve is a pure function of the
     key, so the replayed outcome is bit-identical to a re-solve.

   State is domain-local (pulse trains run inside one domain; parallel
   sweeps get an independent cache per worker) and keyed to the device by
   physical identity — a different device record, even field-for-field
   equal, resets the cache. Under an active fault-injection plan both
   lookup and store are bypassed: a fault-poisoned solve must not be
   memoized, and a memoized clean outcome must not mask the fault path. *)

type warm_state = {
  mutable ws_device : Fgt.t option;
  replays : (float * float * float, outcome) Hashtbl.t;
  h_last : (bool, float) Hashtbl.t;
}

let warm_key : warm_state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { ws_device = None; replays = Hashtbl.create 32; h_last = Hashtbl.create 2 })

(* Limit cycles are short (a program/erase pair per distinct charge state);
   cap the table well above that and reset wholesale if it ever fills. *)
let max_replay_entries = 64

let warm_state_for t =
  let ws = Domain.DLS.get warm_key in
  (match ws.ws_device with
   (* lint: allow L9 — [==] here is a conservative same-device check on the
      per-domain warm cache: a false negative only resets the cache and
      recomputes identical values *)
   | Some d when d == t -> ()
   | _ ->
     Hashtbl.reset ws.replays;
     Hashtbl.reset ws.h_last;
     ws.ws_device <- Some t);
  ws

let apply_pulse ?budget ?(warm_start = true) ?(surrogate = true) t ~qfg pulse =
  if pulse.duration <= 0. then
    Error
      (Err.make ~solver:"Program_erase.apply_pulse"
         (Err.Invalid_input "duration <= 0"))
  else Tel.span "program_erase/pulse" @@ fun () ->
    Tel.count "program_erase/pulse";
    let faulted = Fault.active () in
    (* precedence: surrogate > exact replay > exact solve. The surrogate is
       consulted first because it serves the whole operating box, not just
       bit-exact key repeats; like the warm caches it is bypassed under an
       active fault plan so a fault path is never masked by a table. *)
    let sur =
      if surrogate && not faulted then
        Pulse_surrogate.pulse_response ?budget t ~vgs:pulse.vgs
          ~duration:pulse.duration ~qfg
      else None
    in
    match sur with
    | Some r ->
      if r.Pulse_surrogate.saturated then Tel.count "program_erase/saturated";
      let qfg_after = r.Pulse_surrogate.qfg_after in
      Ok
        {
          qfg_before = qfg;
          qfg_after;
          dvt_after = Fgt.threshold_shift t ~qfg:qfg_after;
          injected_charge = abs_float (qfg_after -. qfg);
          saturated = r.Pulse_surrogate.saturated;
        }
    | None ->
    let warm = warm_start && not faulted in
    let ws = if warm then Some (warm_state_for t) else None in
    let key = (pulse.vgs, pulse.duration, qfg) in
    let replayed =
      match ws with Some ws -> Hashtbl.find_opt ws.replays key | None -> None
    in
    match replayed with
    | Some outcome ->
      Tel.count "program_erase/pulse_replay";
      if outcome.saturated then Tel.count "program_erase/saturated";
      Ok outcome
    | None ->
      let h0 =
        match ws with
        | None -> None
        | Some ws ->
          (match Hashtbl.find_opt ws.h_last (pulse.vgs >= 0.) with
           | Some h ->
             Tel.count "transient/warm_start_hit";
             Some h
           | None -> None)
      in
      (match
         Budget.with_opt budget @@ fun () ->
         Transient.run ?h0 ~qfg0:qfg t ~vgs:pulse.vgs ~duration:pulse.duration
       with
       | Error e -> Error e
       | Ok r ->
         if Option.is_some r.Transient.tsat then Tel.count "program_erase/saturated";
         let outcome =
           {
             qfg_before = qfg;
             qfg_after = r.Transient.qfg_final;
             dvt_after = r.Transient.dvt_final;
             injected_charge = abs_float (r.Transient.qfg_final -. qfg);
             saturated = Option.is_some r.Transient.tsat;
           }
         in
         (match ws with
          | None -> ()
          | Some ws ->
            (match r.Transient.h_first with
             | Some h -> Hashtbl.replace ws.h_last (pulse.vgs >= 0.) h
             | None -> ());
            if Hashtbl.length ws.replays >= max_replay_entries then
              Hashtbl.reset ws.replays;
            Hashtbl.replace ws.replays key outcome);
         Ok outcome)

let program ?budget ?warm_start ?surrogate ?(pulse = default_program_pulse) t ~qfg =
  apply_pulse ?budget ?warm_start ?surrogate t ~qfg pulse

let erase ?budget ?warm_start ?surrogate ?(pulse = default_erase_pulse) t ~qfg =
  apply_pulse ?budget ?warm_start ?surrogate t ~qfg pulse

let cycle ?warm_start ?surrogate ?(program_pulse = default_program_pulse)
    ?(erase_pulse = default_erase_pulse) t ~qfg =
  match program ?warm_start ?surrogate ~pulse:program_pulse t ~qfg with
  | Error e -> Error e
  | Ok p ->
    (match erase ?warm_start ?surrogate ~pulse:erase_pulse t ~qfg:p.qfg_after with
     | Error e -> Error e
     | Ok e -> Ok (p, e))
