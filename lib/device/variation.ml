module Stats = Gnrflash_numerics.Stats
module Sweep = Gnrflash_parallel.Sweep
module Err = Gnrflash_resilience.Solver_error
module Tel = Gnrflash_telemetry.Telemetry

type spread = {
  sigma_xto : float;
  sigma_phi : float;
  sigma_gcr : float;
}

let default_spread = { sigma_xto = 0.1e-9; sigma_phi = 0.05; sigma_gcr = 0.01 }

type sample = {
  xto : float;
  phi_b_ev : float;
  gcr : float;
  program_time : float;
  dvt_fixed_pulse : float;
  solve_failed : bool;
  failure : Err.t option;
}

let gaussian state =
  (* Box-Muller *)
  let u1 = Random.State.float state 1. in
  let u2 = Random.State.float state 1. in
  sqrt (-2. *. log (max u1 1e-300)) *. cos (2. *. Float.pi *. u2)

let perturbed_device ~base ~spread state =
  let base_fn = base.Fgt.tunnel_fn in
  let xto = max 1e-9 (base.Fgt.xto +. (spread.sigma_xto *. gaussian state)) in
  let phi =
    max 1. (base_fn.Gnrflash_quantum.Fn.phi_b_ev +. (spread.sigma_phi *. gaussian state))
  in
  let gcr =
    min 0.95 (max 0.05 (Fgt.gcr base +. (spread.sigma_gcr *. gaussian state)))
  in
  let fn =
    Gnrflash_quantum.Fn.coefficients ~phi_b_ev:phi
      ~m_ox_rel:base_fn.Gnrflash_quantum.Fn.m_ox_rel
  in
  (* only the channel <-> FG tunnel interface is perturbed; the control-gate
     barrier is a different physical interface and keeps its base
     coefficients *)
  let t = Fgt.with_xto (Fgt.with_gcr base gcr) xto in
  ({ t with Fgt.tunnel_fn = fn }, xto, phi, gcr)

(* [Ok None] (threshold not reached within the horizon) is a legitimately
   slow device, reported as [infinity]; only solver [Error]s count as failed
   solves, so they can be excluded from the statistics rather than poisoning
   them. *)
let evaluate device =
  let program_time, prog_failure =
    match Transient.time_to_threshold_shift device ~vgs:15. ~dvt:2. ~max_time:1. with
    | Ok (Some t) -> (t, None)
    | Ok None -> (infinity, None)
    | Error e -> (infinity, Some e)
  in
  let dvt_fixed_pulse, pulse_failure =
    match Transient.run device ~vgs:15. ~duration:100e-9 with
    | Ok r -> (r.Transient.dvt_final, None)
    | Error e -> (nan, Some e)
  in
  let failure =
    match prog_failure with Some e -> Some e | None -> pulse_failure
  in
  (program_time, dvt_fixed_pulse, failure)

let perturbed ?(spread = default_spread) ~seed ~index ~base () =
  let state = Random.State.make [| Sweep.splitmix ~seed ~index |] in
  let t, _, _, _ = perturbed_device ~base ~spread state in
  t

let sample_devices ?(spread = default_spread) ?(seed = 2014) ?jobs ?shards ~base ~n
    () =
  (* lint: allow L1 — n < 1 is a caller programming bug on a pure sampling
     helper, not a solver data condition; Invalid_argument is the contract *)
  if n < 1 then invalid_arg "Variation.sample_devices: n < 1";
  (* each sample seeds its own PRNG from splitmix(seed, index), so the draw
     depends only on (seed, index) - never on chunking or job count - and
     the ensemble is identical for any [jobs] *)
  Sweep.init ?jobs ?shards n (fun index ->
      let state = Random.State.make [| Sweep.splitmix ~seed ~index |] in
      let device, xto, phi_b_ev, gcr = perturbed_device ~base ~spread state in
      let program_time, dvt_fixed_pulse, failure = evaluate device in
      { xto; phi_b_ev; gcr; program_time; dvt_fixed_pulse;
        solve_failed = Option.is_some failure; failure })

type summary = {
  n : int;
  n_failed : int;
  t_prog_median : float;
  t_prog_p95 : float;
  t_prog_spread : float;
  dvt_mean : float;
  dvt_sigma : float;
  failed_by_class : (string * int) list;
}

(* Statistics run over finite samples only, so one failed or saturated solve
   widens [n_failed] instead of driving a percentile or mean to inf/nan. *)
let summarize samples =
  let finite_of field =
    Array.of_list
      (List.filter_map
         (fun s ->
            let v = field s in
            if Float.is_finite v && not s.solve_failed then Some v else None)
         (Array.to_list samples))
  in
  let times = finite_of (fun s -> s.program_time) in
  if Array.length times = 0 then
    Error "Variation.summarize: no successful samples"
  else begin
  let dvts = finite_of (fun s -> s.dvt_fixed_pulse) in
  let n_failed =
    Array.fold_left (fun acc s -> if s.solve_failed then acc + 1 else acc) 0 samples
  in
  (* typed failure causes, bucketed by error class (sorted for stable output) *)
  let failed_by_class =
    let tbl = Hashtbl.create 8 in
    Array.iter
      (fun s ->
         match s.failure with
         | None -> ()
         | Some e ->
           let k = Err.label e in
           Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      samples;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Ok
    {
      n = Array.length samples;
      n_failed;
      t_prog_median = Stats.median times;
      t_prog_p95 = Stats.percentile 95. times;
      t_prog_spread = Stats.percentile 95. times /. Stats.percentile 5. times;
      dvt_mean = Stats.mean dvts;
      dvt_sigma = Stats.std dvts;
      failed_by_class;
    }
  end

let sensitivity_xto ?(delta = 0.05e-9) base =
  let time xto =
    let t = Fgt.with_xto base xto in
    match Transient.time_to_threshold_shift t ~vgs:15. ~dvt:2. ~max_time:10. with
    | Ok (Some time) -> time
    | Ok None -> nan
    | Error e ->
      Tel.count ("variation/sensitivity_fallback/" ^ Err.label e);
      nan
  in
  let t_plus = time (base.Fgt.xto +. delta) in
  let t_minus = time (base.Fgt.xto -. delta) in
  (log10 t_plus -. log10 t_minus) /. (2. *. delta *. 1e9)
