(** The floating-gate capacitance network of paper equation (2):
    [CT = CFC + CFS + CFB + CFD] and the gate-coupling ratio
    [GCR = CFC / CT]. All capacitances in farads (per cell).

    The [_q] functions are the unit-typed primaries over
    {!Gnrflash_units.farad} quantities; the raw-float API is a thin
    bit-identical shim kept for the figure/CLI boundary. *)

type t = {
  cfc : float;  (** floating gate ↔ control gate *)
  cfs : float;  (** floating gate ↔ source *)
  cfb : float;  (** floating gate ↔ body *)
  cfd : float;  (** floating gate ↔ drain *)
}

val cfc_qty : t -> Gnrflash_units.farad Gnrflash_units.qty
val cfs_qty : t -> Gnrflash_units.farad Gnrflash_units.qty
val cfb_qty : t -> Gnrflash_units.farad Gnrflash_units.qty
val cfd_qty : t -> Gnrflash_units.farad Gnrflash_units.qty

val make_q :
  cfc:Gnrflash_units.farad Gnrflash_units.qty ->
  cfs:Gnrflash_units.farad Gnrflash_units.qty ->
  cfb:Gnrflash_units.farad Gnrflash_units.qty ->
  cfd:Gnrflash_units.farad Gnrflash_units.qty -> t
(** Build a network from typed capacitances. @raise Invalid_argument on a
    negative component or a zero total. *)

val make : cfc:float -> cfs:float -> cfb:float -> cfd:float -> t
(** Raw shim over {!make_q}. *)

val total_q : t -> Gnrflash_units.farad Gnrflash_units.qty
(** Equation (2). *)

val total : t -> float
(** Raw shim over {!total_q}. *)

val gcr : t -> float
(** Gate-coupling ratio [CFC/CT], in (0, 1] — dimensionless. *)

val of_gcr_q : gcr:float -> cfc:Gnrflash_units.farad Gnrflash_units.qty -> t
(** Synthesize a network with the given [gcr] and control capacitance: the
    remaining capacitance [cfc·(1/gcr − 1)] is split between source, body
    and drain in the conventional 25/50/25 proportion. The split does not
    affect any paper quantity (only CT and CFC enter equations (2)–(3));
    it is recorded for completeness.
    @raise Invalid_argument unless [0 < gcr <= 1] and [cfc > 0]. *)

val of_gcr : gcr:float -> cfc:float -> t
(** Raw shim over {!of_gcr_q}. *)

val parallel_plate_q :
  eps_r:float ->
  area:Gnrflash_units.m2 Gnrflash_units.qty ->
  thickness:Gnrflash_units.metre Gnrflash_units.qty ->
  Gnrflash_units.farad Gnrflash_units.qty
(** [ε₀·εᵣ·A/t] — derive a component from geometry. The area/thickness
    distinction is where the type layer pays off: swapping them no longer
    type-checks. *)

val parallel_plate : eps_r:float -> area:float -> thickness:float -> float
(** Raw shim over {!parallel_plate_q}. *)

val with_quantum_capacitance_q :
  t -> cq:Gnrflash_units.farad Gnrflash_units.qty -> t
(** Ext E: the MLGNR floating gate's quantum capacitance [cq] in series
    with the control-gate coupling — returns a network whose [cfc] is
    [cfc·cq/(cfc + cq)], lowering the effective GCR. *)

val with_quantum_capacitance : t -> cq:float -> t
(** Raw shim over {!with_quantum_capacitance_q}. *)
