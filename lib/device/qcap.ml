module Mlgnr = Gnrflash_materials.Mlgnr
module Gnr = Gnrflash_materials.Gnr
module C = Gnrflash_physics.Constants
module Roots = Gnrflash_numerics.Roots
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error

let default_stack () = Mlgnr.make (Gnr.make Gnr.Armchair 12) ~layers:3

let fermi_shift ~stack ~area ~qfg =
  let sigma = abs_float qfg /. area in
  if sigma <= 0. then 0.
  else begin
    Tel.span "qcap/fermi_shift" @@ fun () ->
    (* invert storable_charge: find ef with stack charge density = sigma *)
    let f ef_ev = Mlgnr.storable_charge stack ~ef_max_ev:ef_ev -. sigma in
    match Roots.bracket_root f 1e-4 1. with
    | Error e ->
      Tel.count ("qcap/fermi_shift_fallback/" ^ Err.label e);
      0.
    | Ok (lo, hi) ->
      (match Roots.brent f lo hi with
       | Ok ef_ev -> ef_ev *. C.ev
       | Error e ->
         Tel.count ("qcap/fermi_shift_fallback/" ^ Err.label e);
         0.)
  end

let vfg_effective t ~stack ~vgs ~qfg =
  let geom = Fgt.vfg t ~vgs ~qfg in
  let shift = fermi_shift ~stack ~area:t.Fgt.area ~qfg /. C.q in
  (* the tunneling drive is the electrochemical potential mu = -e*phi + EF:
     stored electrons both lower phi (the Q/CT term inside [geom]) and
     raise EF, so the effective drive drops by an extra EF/e — the quantum
     capacitance acting in series; hole storage mirrors it *)
  if qfg < 0. then geom -. shift else if qfg > 0. then geom +. shift else geom

type result = {
  qfg_final : float;
  qfg_final_metal : float;
  dvt_final : float;
  dvt_final_metal : float;
  window_shrink : float;
  ef_final_ev : float;
}

(* Forward stepping with per-step charge clamping (5% of the running
   scale); the FN currents are stiff but monotone, so this converges to the
   fixed point like the metal-gate ODE does. *)
let run ?(stack = default_stack ()) t ~vgs ~duration =
  if duration <= 0. then Error "Qcap.run: duration <= 0"
  else begin
    let j_net qfg =
      let vfg = vfg_effective t ~stack ~vgs ~qfg in
      let et = (vfg -. t.Fgt.vs) /. t.Fgt.xto in
      let ec = (vgs -. vfg) /. t.Fgt.xco in
      let j_in =
        (if et > 0. then Gnrflash_quantum.Fn.current_density t.Fgt.tunnel_fn ~field:et
         else 0.)
        +. (if ec < 0. then
              Gnrflash_quantum.Fn.current_density t.Fgt.control_fn ~field:(-.ec)
            else 0.)
      in
      let j_out =
        (if ec > 0. then Gnrflash_quantum.Fn.current_density t.Fgt.control_fn ~field:ec
         else 0.)
        +. (if et < 0. then
              Gnrflash_quantum.Fn.current_density t.Fgt.tunnel_fn ~field:(-.et)
            else 0.)
      in
      -.t.Fgt.area *. (j_in -. j_out)
    in
    (* Integrate with damped steps until either the time budget runs out or
       the charge is within 0.1% of the fixed point; then snap to the fixed
       point found by root finding (the charge balance is monotone in q, so
       the equilibrium is unique). *)
    let q_scale = Fgt.ct t *. (1. +. abs_float vgs) in
    let q_star =
      Tel.span "qcap/equilibrium" @@ fun () ->
      let g q = j_net q in
      let bound = -.1.2 *. q_scale in
      match Roots.brent g (if vgs >= 0. then bound else 0.)
              (if vgs >= 0. then 0. else -.bound) with
      | Ok q -> q
      | Error e ->
        Tel.count ("qcap/equilibrium_fallback/" ^ Err.label e);
        0.
    in
    let q = ref 0. and time = ref 0. in
    let continue = ref true in
    while !continue && !time < duration do
      let rate = j_net !q in
      if abs_float (!q -. q_star) < 1e-3 *. (abs_float q_star +. 1e-30) then begin
        q := q_star;
        continue := false
      end
      else if abs_float rate <= 0. then continue := false
      else begin
        (* never step past the fixed point *)
        let dt_charge = 0.5 *. abs_float (q_star -. !q) /. abs_float rate in
        let dt = max (min dt_charge (duration -. !time)) (duration *. 1e-12) in
        q := !q +. (rate *. dt);
        time := !time +. dt
      end
    done;
    match Transient.run t ~vgs ~duration with
    | Error e -> Error (Gnrflash_resilience.Solver_error.to_string e)
    | Ok metal ->
      let dvt_final = Fgt.threshold_shift t ~qfg:!q in
      let dvt_final_metal = metal.Transient.dvt_final in
      Ok
        {
          qfg_final = !q;
          qfg_final_metal = metal.Transient.qfg_final;
          dvt_final;
          dvt_final_metal;
          window_shrink =
            (if Float.equal dvt_final_metal 0. then 0. else 1. -. (dvt_final /. dvt_final_metal));
          ef_final_ev = fermi_shift ~stack ~area:t.Fgt.area ~qfg:!q /. C.ev;
        }
  end
