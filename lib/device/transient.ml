module Ode = Gnrflash_numerics.Ode
module U = Gnrflash_units
module Roots = Gnrflash_numerics.Roots
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fallback = Gnrflash_resilience.Fallback

type error = Err.t

type sample = {
  time : float;
  qfg : float;
  vfg : float;
  j_in : float;
  j_out : float;
}

type result = {
  samples : sample array;
  tsat : float option;
  qfg_final : float;
  dvt_final : float;
  h_first : float option;
}

let sample_of (t : Fgt.t) ~vgs ~time ~qfg =
  {
    time;
    qfg;
    vfg = Fgt.vfg t ~vgs ~qfg;
    j_in = Fgt.j_in t ~vgs ~qfg;
    j_out = Fgt.j_out t ~vgs ~qfg;
  }

let initial_currents t ~vgs ~qfg = (Fgt.j_in t ~vgs ~qfg, Fgt.j_out t ~vgs ~qfg)

let imbalance t ~vgs ~qfg ~threshold =
  let ji = Fgt.j_in t ~vgs ~qfg and jo = Fgt.j_out t ~vgs ~qfg in
  let s = ji +. jo in
  if s <= 0. then -1. (* nothing flowing: saturated by definition *)
  else (abs_float (ji -. jo) /. s) -. threshold

(* Cold-start step size from the RHS scale at t = 0 (the standard
   [h0 = 0.01·|y|/|f|] heuristic, with the natural charge magnitude
   CT·(1+|VGS|) standing in for |y| since transients start at qfg ≈ 0).
   The old fixed [duration/100] guess overshot straight into the region
   where the FN exponential overflows, burning one [ode/step_nan_shrink]
   cascade per pulse. *)
let initial_step_size t ~vgs ~f0 ~duration =
  let q_scale = Fgt.ct t *. (1. +. abs_float vgs) in
  let f0 = abs_float f0 in
  if Float.is_finite f0 && f0 > 0. then
    Float.min (duration /. 100.) (0.01 *. q_scale /. f0)
  else duration /. 100.

let run ?budget ?(qfg0 = 0.) ?(imbalance_threshold = 0.01) ?(rtol = 1e-8) ?h0 t ~vgs
    ~duration =
  let solver = "Transient.run" in
  if duration <= 0. then
    Error (Err.make ~solver (Err.Invalid_input "duration <= 0"))
  else
    Budget.with_opt budget @@ fun () ->
    Err.protect @@ fun () ->
    Tel.span "transient/run" @@ fun () -> begin
    Tel.count "transient/solve";
    (* absolute tolerance scaled to the natural charge magnitude CT·VGS so
       the controller resolves attocoulomb states *)
    let atol = 1e-10 *. Fgt.ct t *. (1. +. abs_float vgs) in
    (* charge-balance RHS through the unit-typed current path: qfg [C],
       dQ/dt [A] — the raw ODE state vector is the boundary *)
    let vgs_q = U.volt vgs in
    let f _time y =
      [| U.to_float (Fgt.dqfg_dt_q t ~vgs:vgs_q ~qfg:(U.coulomb y.(0))) |]
    in
    let event _time y = imbalance t ~vgs ~qfg:y.(0) ~threshold:imbalance_threshold in
    let h0 =
      match h0 with
      | Some h when Float.is_finite h && h > 0. -> Float.min h duration
      | Some _ | None ->
        initial_step_size t ~vgs ~f0:(f 0. [| qfg0 |]).(0) ~duration
    in
    (* If the device starts already balanced (e.g. vgs = 0) the event
       function is negative at t0; integrate without the event. *)
    let already_balanced = event 0. [| qfg0 |] <= 0. in
    let finish times states tsat =
      (match tsat with
       | Some ts ->
         Tel.count "transient/tsat_event";
         if ts < duration then Tel.count "transient/early_stop"
       | None -> ());
      let samples =
        Array.mapi
          (fun i time -> sample_of t ~vgs ~time ~qfg:states.(i).(0))
          times
      in
      let qfg_final = states.(Array.length states - 1).(0) in
      let h_first =
        if Array.length times >= 2 then Some (times.(1) -. times.(0)) else None
      in
      Ok
        {
          samples;
          tsat;
          qfg_final;
          dvt_final = Fgt.threshold_shift t ~qfg:qfg_final;
          h_first;
        }
    in
    let attempt rtol () =
      if already_balanced then begin
        Tel.count "transient/already_balanced";
        match Ode.rkf45 ~rtol ~atol ~h0 ~f ~t0:0. ~y0:[| qfg0 |] ~t1:duration () with
        | Error e -> Error e
        | Ok { Ode.times; states } -> finish times states (Some 0.)
      end
      else
        match
          Ode.rkf45_event ~rtol ~atol ~h0 ~f ~event ~t0:0. ~y0:[| qfg0 |] ~t1:duration ()
        with
        | Error e -> Error e
        | Ok { Ode.trajectory = { Ode.times; states }; event_time; _ } ->
          finish times states event_time
    in
    (* Tolerance-relaxation ladder: a transiently NaN-poisoned or stiff RHS
       that defeats the tight tolerance often integrates fine a couple of
       orders looser; accuracy degrades gracefully instead of the solve
       dying outright. *)
    Fallback.run
      [
        Fallback.rung "rtol" (attempt rtol);
        Fallback.rung "rtol_x100" (attempt (rtol *. 1e2));
        Fallback.rung "rtol_x10000" (attempt (Float.min 1e-3 (rtol *. 1e4)));
      ]
  end

let saturation_charge ?budget t ~vgs =
  Budget.with_opt budget @@ fun () ->
  Err.protect @@ fun () ->
  Tel.span "transient/saturation_charge" @@ fun () ->
  Tel.count "transient/fixed_point_solve";
  let vgs_q = U.volt vgs in
  let f q =
    U.to_float
      U.(Fgt.j_in_q t ~vgs:vgs_q ~qfg:(coulomb q)
         -@ Fgt.j_out_q t ~vgs:vgs_q ~qfg:(coulomb q))
  in
  (* Bracket between q = 0 and the charge that pins VFG to the balanced
     voltage divider point: VFGstar with VFG*/xto = (vgs - VFGstar)/xco for
     programming (mirrored for erase). *)
  let vfg_star = vgs *. t.Fgt.xto /. (t.Fgt.xto +. t.Fgt.xco) in
  let q_star = (vfg_star -. (Fgt.gcr t *. vgs)) *. Fgt.ct t in
  let ji0 = Fgt.j_in t ~vgs ~qfg:0. and jo0 = Fgt.j_out t ~vgs ~qfg:0. in
  (* Balanced at q = 0 within rounding (an exact [f 0. = 0.] test misses
     currents equal up to the last ulp, and both-zero is balanced too). *)
  if ji0 +. jo0 <= 0. || abs_float (ji0 -. jo0) <= 1e-12 *. (ji0 +. jo0) then
    Ok 0.
  else begin
    (* expand slightly beyond the divider point to guarantee a sign change *)
    let q_hi = q_star *. 1.05 in
    (* widest sensible search span: the divider estimate or the full-swing
       charge CT·(1+|vgs|), whichever is larger — covers erase polarity and
       high-GCR devices where the fixed point sits outside [0, 1.05·q*] *)
    let span = Float.max (abs_float q_hi) (Fgt.ct t *. (1. +. abs_float vgs)) in
    Fallback.run
      [
        Fallback.rung "brent_divider" (fun () -> Roots.brent f 0. q_hi);
        Fallback.rung "rebracket_brent" (fun () ->
            match Roots.bracket_root f 0. q_star with
            | Error e -> Error e
            | Ok (lo, hi) -> Roots.brent f lo hi);
        Fallback.rung "wide_bisect" (fun () ->
            match Roots.bracket_root ~max_iter:120 f (-.span) span with
            | Error e -> Error e
            | Ok (lo, hi) -> Roots.bisect f lo hi);
      ]
  end

let time_to_threshold_shift ?budget ?(qfg0 = 0.) t ~vgs ~dvt ~max_time =
  let solver = "Transient.time_to_threshold_shift" in
  if max_time <= 0. then
    Error (Err.make ~solver (Err.Invalid_input "max_time <= 0"))
  else
    Budget.with_opt budget @@ fun () ->
    Err.protect @@ fun () ->
    Tel.span "transient/time_to_threshold_shift" @@ fun () -> begin
    Tel.count "transient/ttts_solve";
    let q_target = U.to_float (Fgt.qfg_for_threshold_shift_q t ~dvt:(U.volt dvt)) in
    let vgs_q = U.volt vgs in
    let f _time y =
      [| U.to_float (Fgt.dqfg_dt_q t ~vgs:vgs_q ~qfg:(U.coulomb y.(0))) |]
    in
    let event _time y = (y.(0) -. q_target) *. (if dvt >= 0. then 1. else -1.) in
    let atol = 1e-10 *. Fgt.ct t *. (1. +. abs_float vgs) in
    let h0 = initial_step_size t ~vgs ~f0:(f 0. [| qfg0 |]).(0) ~duration:max_time in
    let attempt rtol () =
      match
        Ode.rkf45_event ?rtol ~atol ~h0 ~f ~event ~t0:0. ~y0:[| qfg0 |] ~t1:max_time ()
      with
      | Error e -> Error e
      | Ok { Ode.event_time; _ } -> Ok event_time
    in
    Fallback.run
      [
        Fallback.rung "rtol" (attempt None);
        Fallback.rung "rtol_x100" (attempt (Some 1e-6));
      ]
  end
