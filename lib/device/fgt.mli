(** The MLGNR–CNT floating gate transistor: geometry, capacitive coupling
    (paper equation (3)) and the two Fowler–Nordheim injection paths.

    Sign conventions: [qfg] is the stored floating-gate charge in coulombs
    (negative after programming — electrons). Currents are reported as the
    {e electron} fluxes the paper plots: [j_in] is electron injection into
    the FG, [j_out] electron extraction, both non-negative current
    densities [A/m²].

    The [_q] functions are the unit-typed primaries over
    {!Gnrflash_units} quantities (volts, metres, m², coulombs, A/m², A);
    the raw-float API is a thin bit-identical shim kept for the
    figure/CLI/test boundary. *)

type t = {
  caps : Capacitance.t;     (** the equation-(2) network *)
  area : float;             (** tunnel-oxide (cell) area [m²] *)
  xto : float;              (** tunnel-oxide thickness [m] *)
  xco : float;              (** control-oxide thickness [m] *)
  tunnel_fn : Gnrflash_quantum.Fn.params;
  (** FN coefficients of the channel ↔ FG interface *)
  control_fn : Gnrflash_quantum.Fn.params;
  (** FN coefficients of the FG ↔ control-gate interface *)
  vs : float;               (** source bias during operations [V], usually 0 *)
}

val make_q :
  ?vs:Gnrflash_units.volt Gnrflash_units.qty ->
  ?tunnel_oxide:Gnrflash_materials.Oxide.t ->
  ?control_oxide:Gnrflash_materials.Oxide.t ->
  ?channel:Gnrflash_materials.Workfunction.electrode ->
  ?gate:Gnrflash_materials.Workfunction.electrode ->
  gcr:float ->
  xto:Gnrflash_units.metre Gnrflash_units.qty ->
  xco:Gnrflash_units.metre Gnrflash_units.qty ->
  area:Gnrflash_units.m2 Gnrflash_units.qty -> unit -> t
(** Unit-typed primary constructor: thicknesses are [metre qty], the cell
    area an [m2 qty] (e.g. [U.area (U.metre 32e-9) (U.metre 32e-9)]), so
    swapping an area for a thickness no longer type-checks. Semantics
    otherwise identical to {!make}. *)

val make :
  ?vs:float ->
  ?tunnel_oxide:Gnrflash_materials.Oxide.t ->
  ?control_oxide:Gnrflash_materials.Oxide.t ->
  ?channel:Gnrflash_materials.Workfunction.electrode ->
  ?gate:Gnrflash_materials.Workfunction.electrode ->
  gcr:float -> xto:float -> xco:float -> area:float -> unit -> t
(** Build a device. Defaults follow the paper: SiO₂ oxides, MLGNR channel
    and CNT-contacted floating gate (both defaulting to the textbook
    Si/SiO₂-like 3.2 eV barrier via [channel]/[gate] of
    [Custom ("paper", 4.1)]), [vs = 0]. [control_oxide] (default: the
    tunnel oxide) sets the FG ↔ control-gate stack: both the blocking FN
    barrier ([control_fn]) and the [cfc] parallel-plate permittivity come
    from it, so a high-k blocking dielectric changes [j_out] without
    touching the channel-side [j_in]. [gcr] fixes the capacitance network
    via {!Capacitance.of_gcr} with [cfc] from the control-oxide parallel
    plate. @raise Invalid_argument for non-physical geometry. *)

val paper_default : t
(** The device of the paper's worked example: GCR = 0.6, XTO = 5 nm,
    XCO = 10 nm, area = (32 nm)², Φ_B = 3.2 eV, m_ox = 0.42 m0. *)

val with_gcr : t -> float -> t
(** Same device with the coupling ratio replaced (Figs 6, 8 sweeps). *)

val with_xto : t -> float -> t
(** Same device with the tunnel-oxide thickness replaced (Figs 7, 9). *)

val gcr : t -> float
(** The device's gate-coupling ratio. *)

val ct : t -> float
(** Total capacitance CT [F]. *)

val ct_qty : t -> Gnrflash_units.farad Gnrflash_units.qty
(** Typed total capacitance. *)

val area_qty : t -> Gnrflash_units.m2 Gnrflash_units.qty
val xto_qty : t -> Gnrflash_units.metre Gnrflash_units.qty
val xco_qty : t -> Gnrflash_units.metre Gnrflash_units.qty
val vs_qty : t -> Gnrflash_units.volt Gnrflash_units.qty

val vfg_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.volt Gnrflash_units.qty
(** Paper equation (3), typed: [VFG = GCR·VGS + QFG/CT] — the charge/total-
    capacitance division is the checked [coulomb //@ farad = volt]. *)

val tunnel_field_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.v_per_m Gnrflash_units.qty

val control_field_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.v_per_m Gnrflash_units.qty

val j_in_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.a_per_m2 Gnrflash_units.qty

val j_out_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.a_per_m2 Gnrflash_units.qty

val dqfg_dt_q :
  t -> vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.ampere Gnrflash_units.qty
(** Net charging rate as a typed current (C/s):
    [−(j_in − j_out)·area] with the checked [a_per_m2 *@ m2 = ampere]. *)

val threshold_shift_q :
  t -> qfg:Gnrflash_units.coulomb Gnrflash_units.qty ->
  Gnrflash_units.volt Gnrflash_units.qty

val qfg_for_threshold_shift_q :
  t -> dvt:Gnrflash_units.volt Gnrflash_units.qty ->
  Gnrflash_units.coulomb Gnrflash_units.qty

val vfg : t -> vgs:float -> qfg:float -> float
(** Paper equation (3): [VFG = GCR·VGS + QFG/CT]. *)

val tunnel_field : t -> vgs:float -> qfg:float -> float
(** Signed field across the tunnel oxide, [(VFG − VS)/XTO] [V/m];
    positive drives electrons from the channel into the FG. *)

val control_field : t -> vgs:float -> qfg:float -> float
(** Signed field across the control oxide, [(VGS − VFG)/XCO]; positive
    drives electrons from the FG toward the control gate. *)

val j_in : t -> vgs:float -> qfg:float -> float
(** Electron injection into the floating gate [A/m²]: FN through the
    tunnel oxide when the tunnel field is positive, plus FN from the
    control gate when the control field is negative. *)

val j_out : t -> vgs:float -> qfg:float -> float
(** Electron extraction from the floating gate [A/m²]: FN to the control
    gate when the control field is positive, plus FN back to the channel
    when the tunnel field is negative. *)

val dqfg_dt : t -> vgs:float -> qfg:float -> float
(** Net charging rate [C/s]: [−area·(j_in − j_out)] (electron influx makes
    the stored charge more negative). *)

val threshold_shift : t -> qfg:float -> float
(** Threshold-voltage shift seen from the control gate,
    [ΔVT = −QFG/CFC] — positive after programming. *)

val qfg_for_threshold_shift : t -> dvt:float -> float
(** Inverse of {!threshold_shift}. *)
