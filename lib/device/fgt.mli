(** The MLGNR–CNT floating gate transistor: geometry, capacitive coupling
    (paper equation (3)) and the two Fowler–Nordheim injection paths.

    Sign conventions: [qfg] is the stored floating-gate charge in coulombs
    (negative after programming — electrons). Currents are reported as the
    {e electron} fluxes the paper plots: [j_in] is electron injection into
    the FG, [j_out] electron extraction, both non-negative current
    densities [A/m²]. *)

type t = {
  caps : Capacitance.t;     (** the equation-(2) network *)
  area : float;             (** tunnel-oxide (cell) area [m²] *)
  xto : float;              (** tunnel-oxide thickness [m] *)
  xco : float;              (** control-oxide thickness [m] *)
  tunnel_fn : Gnrflash_quantum.Fn.params;
  (** FN coefficients of the channel ↔ FG interface *)
  control_fn : Gnrflash_quantum.Fn.params;
  (** FN coefficients of the FG ↔ control-gate interface *)
  vs : float;               (** source bias during operations [V], usually 0 *)
}

val make :
  ?vs:float ->
  ?tunnel_oxide:Gnrflash_materials.Oxide.t ->
  ?control_oxide:Gnrflash_materials.Oxide.t ->
  ?channel:Gnrflash_materials.Workfunction.electrode ->
  ?gate:Gnrflash_materials.Workfunction.electrode ->
  gcr:float -> xto:float -> xco:float -> area:float -> unit -> t
(** Build a device. Defaults follow the paper: SiO₂ oxides, MLGNR channel
    and CNT-contacted floating gate (both defaulting to the textbook
    Si/SiO₂-like 3.2 eV barrier via [channel]/[gate] of
    [Custom ("paper", 4.1)]), [vs = 0]. [control_oxide] (default: the
    tunnel oxide) sets the FG ↔ control-gate stack: both the blocking FN
    barrier ([control_fn]) and the [cfc] parallel-plate permittivity come
    from it, so a high-k blocking dielectric changes [j_out] without
    touching the channel-side [j_in]. [gcr] fixes the capacitance network
    via {!Capacitance.of_gcr} with [cfc] from the control-oxide parallel
    plate. @raise Invalid_argument for non-physical geometry. *)

val paper_default : t
(** The device of the paper's worked example: GCR = 0.6, XTO = 5 nm,
    XCO = 10 nm, area = (32 nm)², Φ_B = 3.2 eV, m_ox = 0.42 m0. *)

val with_gcr : t -> float -> t
(** Same device with the coupling ratio replaced (Figs 6, 8 sweeps). *)

val with_xto : t -> float -> t
(** Same device with the tunnel-oxide thickness replaced (Figs 7, 9). *)

val gcr : t -> float
(** The device's gate-coupling ratio. *)

val ct : t -> float
(** Total capacitance CT [F]. *)

val vfg : t -> vgs:float -> qfg:float -> float
(** Paper equation (3): [VFG = GCR·VGS + QFG/CT]. *)

val tunnel_field : t -> vgs:float -> qfg:float -> float
(** Signed field across the tunnel oxide, [(VFG − VS)/XTO] [V/m];
    positive drives electrons from the channel into the FG. *)

val control_field : t -> vgs:float -> qfg:float -> float
(** Signed field across the control oxide, [(VGS − VFG)/XCO]; positive
    drives electrons from the FG toward the control gate. *)

val j_in : t -> vgs:float -> qfg:float -> float
(** Electron injection into the floating gate [A/m²]: FN through the
    tunnel oxide when the tunnel field is positive, plus FN from the
    control gate when the control field is negative. *)

val j_out : t -> vgs:float -> qfg:float -> float
(** Electron extraction from the floating gate [A/m²]: FN to the control
    gate when the control field is positive, plus FN back to the channel
    when the tunnel field is negative. *)

val dqfg_dt : t -> vgs:float -> qfg:float -> float
(** Net charging rate [C/s]: [−area·(j_in − j_out)] (electron influx makes
    the stored charge more negative). *)

val threshold_shift : t -> qfg:float -> float
(** Threshold-voltage shift seen from the control gate,
    [ΔVT = −QFG/CFC] — positive after programming. *)

val qfg_for_threshold_shift : t -> dvt:float -> float
(** Inverse of {!threshold_shift}. *)
