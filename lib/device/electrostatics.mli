(** One-dimensional Poisson solution across the gate stack — the
    "more accurate model" cross-check for the capacitor-divider equation
    (3). The stack control-gate / control-oxide / floating-gate /
    tunnel-oxide / channel is discretized with finite differences; the
    floating-gate charge enters as a sheet charge at its node; Dirichlet
    boundaries at the control gate (VGS) and channel (VS). With ideal
    (metal-like) gates the solution must reproduce the voltage divider
    exactly — verified by tests — while the framework also admits a finite
    floating-gate quantum capacitance. *)

type stack = {
  xco : float;       (** control-oxide thickness [m] *)
  xto : float;       (** tunnel-oxide thickness [m] *)
  eps_r_co : float;  (** control-oxide relative permittivity *)
  eps_r_to : float;  (** tunnel-oxide relative permittivity *)
  nodes_per_layer : int;  (** FD resolution per oxide *)
}

val of_fgt : ?nodes_per_layer:int -> Fgt.t -> stack
(** Extract the stack geometry from a device (both oxides share the
    device's tunnel-oxide permittivity, as in {!Fgt.make}). *)

type solution = {
  x : float array;        (** node positions, 0 at the control gate [m] *)
  potential : float array;(** electrostatic potential at the nodes [V] *)
  vfg : float;            (** floating-gate potential [V] *)
  field_tunnel : float;   (** field in the tunnel oxide [V/m], channel side *)
  field_control : float;  (** field in the control oxide [V/m] *)
}

val solve :
  stack -> vgs:float -> vs:float -> sigma_fg:float -> (solution, string) result
(** Solve Poisson with floating-gate sheet-charge density [sigma_fg]
    [C/m²]. Fails only on a degenerate discretization. *)

val vfg_divider_q :
  stack ->
  vgs:Gnrflash_units.volt Gnrflash_units.qty ->
  vs:Gnrflash_units.volt Gnrflash_units.qty ->
  sigma_fg:Gnrflash_units.c_per_m2 Gnrflash_units.qty ->
  Gnrflash_units.volt Gnrflash_units.qty
(** The closed-form series-capacitor solution of the same problem:
    [VFG = (C_co·VGS + C_to·VS + σ_FG) / (C_co + C_to)] — the equation-(3)
    model restricted to the two plate capacitances, with the areal
    charge/capacitance algebra checked ([F/m²·V = C/m²],
    [C/m² ÷ F/m² = V]). Used to validate {!solve}. *)

val vfg_divider : stack -> vgs:float -> vs:float -> sigma_fg:float -> float
(** Raw shim over {!vfg_divider_q}. *)

val vfg_qty : solution -> Gnrflash_units.volt Gnrflash_units.qty
val field_tunnel_qty : solution -> Gnrflash_units.v_per_m Gnrflash_units.qty
val field_control_qty : solution -> Gnrflash_units.v_per_m Gnrflash_units.qty
(** Typed views of the solved floating-gate potential and oxide fields. *)
