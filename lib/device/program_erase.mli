(** Pulse-level program and erase operations built on {!Transient}.

    Failures are typed [Gnrflash_resilience.Solver_error.t] values; an
    optional [?budget] bounds the underlying transient solve. *)

type error = Gnrflash_resilience.Solver_error.t

type pulse = {
  vgs : float;       (** control-gate bias during the pulse [V] *)
  duration : float;  (** pulse width [s] *)
}

type outcome = {
  qfg_before : float;
  qfg_after : float;
  dvt_after : float;      (** threshold shift after the pulse [V] *)
  injected_charge : float;(** |ΔQFG| [C] — feeds the reliability model *)
  saturated : bool;       (** the Jin = Jout event fired inside the pulse *)
}

val apply_pulse :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?warm_start:bool ->
  ?surrogate:bool ->
  Fgt.t -> qfg:float -> pulse -> (outcome, error) result
(** Run one bias pulse from the given initial charge.

    [surrogate] (default [true]) lets in-box pulses be served from the
    {!Pulse_surrogate} table cache: O(log n) interpolation with a
    table-certified divergence bound instead of an adaptive ODE solve, with
    transparent fallback to the exact path for anything the table cannot
    certify (telemetry [surrogate/{hit,fallback,build}]). Precedence is
    surrogate > exact replay > exact solve. Pass [~surrogate:false] for
    bit-exact solver answers; an active fault-injection plan bypasses the
    surrogate automatically, exactly like the warm caches below.

    [warm_start] (default [true]) enables two levels of pulse-train reuse,
    both domain-local and keyed to the device by physical identity:
    the previous same-polarity pulse's first accepted step size seeds this
    pulse's initial [dt] ([transient/warm_start_hit]), and a pulse whose
    (vgs, duration, qfg) triple repeats bit-for-bit on the same device
    record replays the memoized outcome without integrating
    ([program_erase/pulse_replay] — bit-identical to a re-solve, since the
    solve is a pure function of the key). Pass [~warm_start:false] to force
    every pulse through a cold solve; fault-injection plans bypass the
    cache automatically. *)

val program :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?warm_start:bool ->
  ?surrogate:bool ->
  ?pulse:pulse -> Fgt.t -> qfg:float -> (outcome, error) result
(** One programming pulse; defaults to the paper's VGS = 15 V for 1 ms. *)

val erase :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?warm_start:bool ->
  ?surrogate:bool ->
  ?pulse:pulse -> Fgt.t -> qfg:float -> (outcome, error) result
(** One erase pulse; defaults to VGS = −15 V for 1 ms. *)

val default_program_pulse : pulse
val default_erase_pulse : pulse

val cycle :
  ?warm_start:bool ->
  ?surrogate:bool ->
  ?program_pulse:pulse -> ?erase_pulse:pulse -> Fgt.t -> qfg:float ->
  ((outcome * outcome), error) result
(** One full program-then-erase cycle; returns both outcomes. See
    {!apply_pulse} for the warm-start semantics that make long cycle
    trains cheap. *)
