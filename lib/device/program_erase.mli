(** Pulse-level program and erase operations built on {!Transient}.

    Failures are typed [Gnrflash_resilience.Solver_error.t] values; an
    optional [?budget] bounds the underlying transient solve. *)

type error = Gnrflash_resilience.Solver_error.t

type pulse = {
  vgs : float;       (** control-gate bias during the pulse [V] *)
  duration : float;  (** pulse width [s] *)
}

type outcome = {
  qfg_before : float;
  qfg_after : float;
  dvt_after : float;      (** threshold shift after the pulse [V] *)
  injected_charge : float;(** |ΔQFG| [C] — feeds the reliability model *)
  saturated : bool;       (** the Jin = Jout event fired inside the pulse *)
}

val apply_pulse :
  ?budget:Gnrflash_resilience.Budget.t ->
  Fgt.t -> qfg:float -> pulse -> (outcome, error) result
(** Run one bias pulse from the given initial charge. *)

val program :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?pulse:pulse -> Fgt.t -> qfg:float -> (outcome, error) result
(** One programming pulse; defaults to the paper's VGS = 15 V for 1 ms. *)

val erase :
  ?budget:Gnrflash_resilience.Budget.t ->
  ?pulse:pulse -> Fgt.t -> qfg:float -> (outcome, error) result
(** One erase pulse; defaults to VGS = −15 V for 1 ms. *)

val default_program_pulse : pulse
val default_erase_pulse : pulse

val cycle :
  ?program_pulse:pulse -> ?erase_pulse:pulse -> Fgt.t -> qfg:float ->
  ((outcome * outcome), error) result
(** One full program-then-erase cycle; returns both outcomes. *)
