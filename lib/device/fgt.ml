module Fn = Gnrflash_quantum.Fn
module Oxide = Gnrflash_materials.Oxide
module Wf = Gnrflash_materials.Workfunction

type t = {
  caps : Capacitance.t;
  area : float;
  xto : float;
  xco : float;
  tunnel_fn : Fn.params;
  control_fn : Fn.params;
  vs : float;
}

(* The paper quotes the canonical Si/SiO2 numbers (phi_B = 3.2 eV,
   m_ox = 0.42 m0) for its J-V analysis; a work function of 4.1 eV against
   SiO2's 0.9 eV affinity reproduces that barrier. *)
let paper_electrode = Wf.Custom ("paper-default", 4.1)

let make ?(vs = 0.) ?(tunnel_oxide = Oxide.sio2) ?control_oxide
    ?(channel = paper_electrode) ?(gate = paper_electrode) ~gcr ~xto ~xco ~area () =
  if xto <= 0. || xco <= 0. then invalid_arg "Fgt.make: non-positive oxide thickness";
  if area <= 0. then invalid_arg "Fgt.make: non-positive area";
  if xco < xto then invalid_arg "Fgt.make: control oxide thinner than tunnel oxide";
  (* the control-gate interface is its own dielectric: both the blocking FN
     barrier and the CFC parallel plate come from it, not the tunnel oxide *)
  let control_oxide = Option.value control_oxide ~default:tunnel_oxide in
  let cfc =
    Capacitance.parallel_plate ~eps_r:control_oxide.Oxide.eps_r ~area ~thickness:xco
  in
  let caps = Capacitance.of_gcr ~gcr ~cfc in
  {
    caps;
    area;
    xto;
    xco;
    tunnel_fn = Fn.of_interface channel tunnel_oxide;
    control_fn = Fn.of_interface gate control_oxide;
    vs;
  }

let paper_default =
  make ~gcr:0.6 ~xto:5e-9 ~xco:10e-9 ~area:(32e-9 *. 32e-9) ()

let with_gcr t g =
  let caps = Capacitance.of_gcr ~gcr:g ~cfc:t.caps.Capacitance.cfc in
  { t with caps }

let with_xto t xto =
  if xto <= 0. then invalid_arg "Fgt.with_xto: non-positive thickness";
  { t with xto }

let gcr t = Capacitance.gcr t.caps
let ct t = Capacitance.total t.caps

let vfg t ~vgs ~qfg = (gcr t *. vgs) +. (qfg /. ct t)

let tunnel_field t ~vgs ~qfg = (vfg t ~vgs ~qfg -. t.vs) /. t.xto

let control_field t ~vgs ~qfg = (vgs -. vfg t ~vgs ~qfg) /. t.xco

let j_in t ~vgs ~qfg =
  let et = tunnel_field t ~vgs ~qfg in
  let ec = control_field t ~vgs ~qfg in
  let from_channel = if et > 0. then Fn.current_density t.tunnel_fn ~field:et else 0. in
  let from_gate = if ec < 0. then Fn.current_density t.control_fn ~field:(-.ec) else 0. in
  from_channel +. from_gate

let j_out t ~vgs ~qfg =
  let et = tunnel_field t ~vgs ~qfg in
  let ec = control_field t ~vgs ~qfg in
  let to_gate = if ec > 0. then Fn.current_density t.control_fn ~field:ec else 0. in
  let to_channel = if et < 0. then Fn.current_density t.tunnel_fn ~field:(-.et) else 0. in
  to_gate +. to_channel

let dqfg_dt t ~vgs ~qfg = -.t.area *. (j_in t ~vgs ~qfg -. j_out t ~vgs ~qfg)

let threshold_shift t ~qfg = -.qfg /. t.caps.Capacitance.cfc

let qfg_for_threshold_shift t ~dvt = -.dvt *. t.caps.Capacitance.cfc
