module Fn = Gnrflash_quantum.Fn
module Oxide = Gnrflash_materials.Oxide
module Wf = Gnrflash_materials.Workfunction
module U = Gnrflash_units

type t = {
  caps : Capacitance.t;
  area : float;
  xto : float;
  xco : float;
  tunnel_fn : Fn.params;
  control_fn : Fn.params;
  vs : float;
}

(* The paper quotes the canonical Si/SiO2 numbers (phi_B = 3.2 eV,
   m_ox = 0.42 m0) for its J-V analysis; a work function of 4.1 eV against
   SiO2's 0.9 eV affinity reproduces that barrier. *)
let paper_electrode = Wf.Custom ("paper-default", 4.1)

let area_qty t = U.square_metre t.area
let xto_qty t = U.metre t.xto
let xco_qty t = U.metre t.xco
let vs_qty t = U.volt t.vs

let make_q ?(vs = U.volt 0.) ?(tunnel_oxide = Oxide.sio2) ?control_oxide
    ?(channel = paper_electrode) ?(gate = paper_electrode) ~gcr ~xto ~xco
    ~(area : U.m2 U.qty) () =
  if U.(xto <=@ zero) || U.(xco <=@ zero) then
    invalid_arg "Fgt.make: non-positive oxide thickness";
  if U.( <=@ ) area U.zero then invalid_arg "Fgt.make: non-positive area";
  if U.(xco <@ xto) then invalid_arg "Fgt.make: control oxide thinner than tunnel oxide";
  (* the control-gate interface is its own dielectric: both the blocking FN
     barrier and the CFC parallel plate come from it, not the tunnel oxide *)
  let control_oxide = Option.value control_oxide ~default:tunnel_oxide in
  let cfc =
    Capacitance.parallel_plate_q ~eps_r:control_oxide.Oxide.eps_r ~area ~thickness:xco
  in
  let caps = Capacitance.of_gcr_q ~gcr ~cfc in
  {
    caps;
    area = U.to_float area;
    xto = U.to_float xto;
    xco = U.to_float xco;
    tunnel_fn = Fn.of_interface channel tunnel_oxide;
    control_fn = Fn.of_interface gate control_oxide;
    vs = U.to_float vs;
  }

let make ?(vs = 0.) ?tunnel_oxide ?control_oxide ?channel ?gate ~gcr ~xto ~xco ~area () =
  make_q ~vs:(U.volt vs) ?tunnel_oxide ?control_oxide ?channel ?gate ~gcr
    ~xto:(U.metre xto) ~xco:(U.metre xco) ~area:(U.square_metre area) ()

let paper_default =
  make_q ~gcr:0.6 ~xto:(U.metre 5e-9) ~xco:(U.metre 10e-9)
    ~area:(U.area (U.metre 32e-9) (U.metre 32e-9)) ()

let with_gcr t g =
  let caps = Capacitance.of_gcr_q ~gcr:g ~cfc:(Capacitance.cfc_qty t.caps) in
  { t with caps }

let with_xto t xto =
  if xto <= 0. then invalid_arg "Fgt.with_xto: non-positive thickness";
  { t with xto }

let gcr t = Capacitance.gcr t.caps
let ct t = Capacitance.total t.caps
let ct_qty t = Capacitance.total_q t.caps

let vfg_q t ~vgs ~qfg = U.(scale (gcr t) vgs +@ (qfg //@ ct_qty t))

let vfg t ~vgs ~qfg = U.to_float (vfg_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let tunnel_field_q t ~vgs ~qfg = U.((vfg_q t ~vgs ~qfg -@ vs_qty t) /@ xto_qty t)

let tunnel_field t ~vgs ~qfg =
  U.to_float (tunnel_field_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let control_field_q t ~vgs ~qfg = U.((vgs -@ vfg_q t ~vgs ~qfg) /@ xco_qty t)

let control_field t ~vgs ~qfg =
  U.to_float (control_field_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let j_in_q t ~vgs ~qfg =
  let et = tunnel_field_q t ~vgs ~qfg in
  let ec = control_field_q t ~vgs ~qfg in
  let from_channel =
    if U.(et >@ zero) then Fn.current_density_q t.tunnel_fn ~field:et else U.a_per_m2 0.
  in
  let from_gate =
    if U.(ec <@ zero) then Fn.current_density_q t.control_fn ~field:(U.neg ec)
    else U.a_per_m2 0.
  in
  U.(from_channel +@ from_gate)

let j_in t ~vgs ~qfg = U.to_float (j_in_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let j_out_q t ~vgs ~qfg =
  let et = tunnel_field_q t ~vgs ~qfg in
  let ec = control_field_q t ~vgs ~qfg in
  let to_gate =
    if U.(ec >@ zero) then Fn.current_density_q t.control_fn ~field:ec else U.a_per_m2 0.
  in
  let to_channel =
    if U.(et <@ zero) then Fn.current_density_q t.tunnel_fn ~field:(U.neg et)
    else U.a_per_m2 0.
  in
  U.(to_gate +@ to_channel)

let j_out t ~vgs ~qfg = U.to_float (j_out_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let dqfg_dt_q t ~vgs ~qfg =
  U.neg U.((j_in_q t ~vgs ~qfg -@ j_out_q t ~vgs ~qfg) *@ area_qty t)

let dqfg_dt t ~vgs ~qfg = U.to_float (dqfg_dt_q t ~vgs:(U.volt vgs) ~qfg:(U.coulomb qfg))

let threshold_shift_q t ~qfg = U.(neg qfg //@ Capacitance.cfc_qty t.caps)

let threshold_shift t ~qfg = U.to_float (threshold_shift_q t ~qfg:(U.coulomb qfg))

let qfg_for_threshold_shift_q t ~dvt = U.(Capacitance.cfc_qty t.caps *@ neg dvt)

let qfg_for_threshold_shift t ~dvt =
  U.to_float (qfg_for_threshold_shift_q t ~dvt:(U.volt dvt))
