(** Process-variation analysis: Monte-Carlo sampling of device parameters
    (tunnel-oxide thickness, barrier height, coupling ratio) and their
    impact on programming speed and threshold placement. Deterministic
    given the seed. The exponential field dependence of FN tunneling makes
    the cell extremely sensitive to XTO — quantified here. *)

type spread = {
  sigma_xto : float;    (** oxide-thickness σ [m], e.g. 1–2 Å *)
  sigma_phi : float;    (** barrier-height σ [eV] *)
  sigma_gcr : float;    (** coupling-ratio σ (absolute) *)
}

val default_spread : spread
(** σ(XTO) = 0.1 nm, σ(Φ_B) = 0.05 eV, σ(GCR) = 0.01. *)

type sample = {
  xto : float;
  phi_b_ev : float;
  gcr : float;
  program_time : float;   (** time to ΔVT = 2 V at 15 V [s]; [infinity] if unreached *)
  dvt_fixed_pulse : float;(** ΔVT after a fixed 100 ns pulse [V] *)
  solve_failed : bool;    (** a transient solve returned [Error] for this device *)
  failure : Gnrflash_resilience.Solver_error.t option;
                          (** the first typed solver error, when [solve_failed] *)
}

val perturbed :
  ?spread:spread -> seed:int -> index:int -> base:Fgt.t -> unit -> Fgt.t
(** The device drawn for ensemble slot [index] — the same perturbation
    {!sample_devices} would evaluate, without evaluating it. Lets other
    ensembles (e.g. endurance cycling) share the variation model and its
    chunking/shard-independent seeding. *)

val sample_devices :
  ?spread:spread -> ?seed:int -> ?jobs:int -> ?shards:int ->
  base:Fgt.t -> n:int -> unit -> sample array
(** Draw [n] devices around [base] with independent Gaussian parameter
    perturbations (Box–Muller from a seeded PRNG) and evaluate each.
    Sample [i] seeds its own PRNG from [Sweep.splitmix ~seed ~index:i], so
    the ensemble is identical for every [jobs] (and chunking, and
    [shards]) setting; [jobs] (default
    {!Gnrflash_parallel.Sweep.default_jobs}) spreads the transient solves
    across the persistent domain pool, and [shards] (default 1) fans the
    ensemble out across forked worker processes — samples are pure data,
    so they cross the {!Gnrflash_parallel.Shard} frame contract as is.
    @raise Invalid_argument if [n < 1]. *)

type summary = {
  n : int;
  n_failed : int;          (** samples whose transient solve errored *)
  t_prog_median : float;
  t_prog_p95 : float;      (** 95th percentile programming time *)
  t_prog_spread : float;   (** p95 / p5 ratio — decades of speed spread *)
  dvt_mean : float;
  dvt_sigma : float;       (** σ of the fixed-pulse threshold placement *)
  failed_by_class : (string * int) list;
  (** failed solves bucketed by [Solver_error] class label
      (e.g. [("bracket_failure", 2); ("budget_exhausted", 1)]), sorted by
      label; empty when nothing failed *)
}

val summarize : sample array -> (summary, string) result
(** Robust statistics over the ensemble: failed solves are counted in
    [n_failed] and excluded — with every non-finite value — from the
    percentiles and moments. Returns [Error] (instead of raising, per lint
    rule L1) when no sample has a finite programming time — an ensemble
    where every solve failed is a data condition, not a programming bug. *)

val sensitivity_xto : ?delta:float -> Fgt.t -> float
(** d(log10 t_prog)/d(XTO) in decades per nm at the base point — the
    headline sensitivity (one ångström of oxide moves programming time by
    [~0.1×this] decades). *)
