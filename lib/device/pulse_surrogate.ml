module Interp = Gnrflash_numerics.Interp
module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget

type error = Err.t

(* ---------- operating box ---------- *)

type box = {
  vgs_abs_min : float;
  vgs_abs_max : float;
  gcr_min : float;
  gcr_max : float;
  xto_min : float;
  xto_max : float;
  duration_min : float;
  duration_max : float;
}

let paper_box =
  {
    vgs_abs_min = 8.;
    vgs_abs_max = 17.;
    gcr_min = 0.45;
    gcr_max = 0.60;
    xto_min = 5e-9;
    xto_max = 9e-9;
    duration_min = 1e-9;
    duration_max = 1e-1;
  }

(* GCR round-trips through Capacitance.of_gcr (a handful of ulps); XTO is a
   stored float compared against literals. Tiny absolute slacks keep a
   device *constructed at* a box corner inside the box. *)
let gcr_slack = 1e-9
let xto_slack = 1e-15

let in_box ?(box = paper_box) t ~vgs ~duration =
  let v = abs_float vgs in
  let gcr = Fgt.gcr t in
  v >= box.vgs_abs_min
  && v <= box.vgs_abs_max
  && gcr >= box.gcr_min -. gcr_slack
  && gcr <= box.gcr_max +. gcr_slack
  && t.Fgt.xto >= box.xto_min -. xto_slack
  && t.Fgt.xto <= box.xto_max +. xto_slack
  && duration >= box.duration_min
  && duration <= box.duration_max

(* ---------- tables ---------- *)

type t = {
  vgs : float;
  q_of_t : Interp.t;
  t_of_q : Interp.t;
  q_lo : float;          (* inclusive serving range, q_lo <= q_hi *)
  q_hi : float;
  q_scale : float;       (* divergence-metric floor scale *)
  t_end : float;         (* last tabulated trajectory time *)
  q_end : float;         (* charge at t_end (event charge if saturated) *)
  t_sat : float option;  (* saturation-event time on the trajectory *)
  bound : float;
  measured : float;
  build_s : float;
  knots : int;
}

let certified_bound t = t.bound
let max_measured_divergence t = t.measured
let qfg_range t = (t.q_lo, t.q_hi)
let vgs t = t.vgs
let knot_count t = t.knots
let build_seconds t = t.build_s

let divergence t ~exact ~approx =
  abs_float (approx -. exact) /. Float.max (abs_float exact) (1e-3 *. t.q_scale)

type response = {
  qfg_after : float;
  saturated : bool;
}

let query t ~qfg ~duration =
  if duration <= 0. || qfg < t.q_lo || qfg > t.q_hi then None
  else begin
    let t0 = Interp.eval t.t_of_q qfg in
    (* t_of_q is the inverse of a monotone interpolant of the same data, not
       the bit-exact inverse: clamp composition noise back onto the table *)
    let t0 = Float.max 0. (Float.min t0 t.t_end) in
    let t1 = t0 +. duration in
    match t.t_sat with
    | Some ts when t1 >= ts -> Some { qfg_after = t.q_end; saturated = true }
    | _ ->
      if t1 > t.t_end then None
      else Some { qfg_after = Interp.eval t.q_of_t t1; saturated = false }
  end

let saturation_time t ~qfg =
  match t.t_sat with
  | None -> None
  | Some ts ->
    if qfg < t.q_lo || qfg > t.q_hi then None
    else Some (Float.max 0. (ts -. Interp.eval t.t_of_q qfg))

let time_to_charge t ~qfg0 ~qfg1 =
  if qfg0 < t.q_lo || qfg0 > t.q_hi || qfg1 < t.q_lo || qfg1 > t.q_hi then None
  else Some (Interp.eval t.t_of_q qfg1 -. Interp.eval t.t_of_q qfg0)

(* ---------- build + certification ---------- *)

let solver = "Pulse_surrogate.build"

(* The headroom multiplier and floor on the held-out measurement: probes sit
   between knots like real queries do, but an unlucky operating point can
   land worse than the worst probe, and the exact side of a later comparison
   is an independent adaptive solve with its own O(rtol) noise. *)
let bound_headroom = 3.
let bound_floor = 2e-6

let build ?budget ?(box = paper_box) ?(span = 1.5) device ~vgs:v =
  Tel.span "surrogate/build" @@ fun () ->
  Tel.count "surrogate/build";
  (* lint: allow L9 — build_s is a telemetry field reporting construction
     cost; interpolation tables themselves are deterministic in the knots *)
  let cpu0 = Sys.time () in
  match Budget.with_opt budget (fun () -> Transient.saturation_charge device ~vgs:v) with
  | Error e -> Error e
  | Ok q_sat ->
    if abs_float q_sat <= 1e-6 *. Fgt.ct device then
      Error (Err.make ~solver (Err.Invalid_input "degenerate fixed point"))
    else begin
      let q_start = -.span *. q_sat in
      match
        Budget.with_opt budget (fun () ->
            Transient.run ~qfg0:q_start device ~vgs:v ~duration:box.duration_max)
      with
      | Error e -> Error e
      | Ok r ->
        (* keep only samples that strictly advance the charge toward the
           fixed point — the interpolants need strictly monotone abscissae
           in both coordinates *)
        let toward_sat = q_sat > q_start in
        let kept = ref [] and n_kept = ref 0 in
        Array.iter
          (fun s ->
             let advance =
               match !kept with
               | [] -> true
               | last :: _ ->
                 s.Transient.time > last.Transient.time
                 && (if toward_sat then s.Transient.qfg > last.Transient.qfg
                     else s.Transient.qfg < last.Transient.qfg)
             in
             if advance then begin kept := s :: !kept; incr n_kept end)
          r.Transient.samples;
        let samples = Array.of_list (List.rev !kept) in
        let m = Array.length samples in
        if m < 8 then
          Error (Err.make ~solver (Err.Invalid_input "too few trajectory samples"))
        else begin
          let t0 = samples.(0).Transient.time in
          let time i = samples.(i).Transient.time -. t0 in
          let charge i = samples.(i).Transient.qfg in
          let t_end = time (m - 1) in
          let q_end = charge (m - 1) in
          let t_sat =
            Option.map (fun ts -> Float.min ts t_end) r.Transient.tsat
          in
          (* knots: even-indexed samples plus the endpoint; the odd-indexed
             samples are held out as certification probes *)
          let knot_idx =
            List.filter (fun i -> i mod 2 = 0 || i = m - 1)
              (List.init m (fun i -> i))
          in
          let probe_idx =
            List.filter (fun i -> i mod 2 = 1 && i <> m - 1)
              (List.init m (fun i -> i))
          in
          let interp_pair ts qs =
            let q_of_t = Interp.pchip ts qs in
            let t_of_q =
              if toward_sat then Interp.pchip qs ts
              else begin
                let n = Array.length qs in
                let rq = Array.init n (fun i -> qs.(n - 1 - i)) in
                let rt = Array.init n (fun i -> ts.(n - 1 - i)) in
                Interp.pchip rq rt
              end
            in
            (q_of_t, t_of_q)
          in
          let kt = Array.of_list (List.map time knot_idx) in
          let kq = Array.of_list (List.map charge knot_idx) in
          let q_of_t, t_of_q = interp_pair kt kq in
          (* the serving range stops one accepted step short of the event
             charge: every in-range exact re-solve still sees the event
             ahead of it (its event function is strictly positive) *)
          let e0 = charge 0 and e1 = charge (m - 2) in
          let q_lo = Float.min e0 e1 and q_hi = Float.max e0 e1 in
          let q_scale =
            Float.max (abs_float q_lo) (Float.max (abs_float q_hi) (abs_float q_end))
          in
          let table =
            {
              vgs = v; q_of_t; t_of_q; q_lo; q_hi; q_scale; t_end; q_end;
              t_sat; bound = 0.; measured = 0.; build_s = 0.; knots = Array.length kt;
            }
          in
          (* certification against the held-out samples: direct q_of_t
             probes plus the composed query Q(T(q_i) + (t_j − t_i)) at
             several strides, plus the saturated tail *)
          let probes = Array.of_list probe_idx in
          let np = Array.length probes in
          let worst = ref 0. in
          let note ~exact ~approx =
            let d = divergence table ~exact ~approx in
            if d > !worst then worst := d
          in
          Array.iteri
            (fun p i ->
               note ~exact:(charge i) ~approx:(Interp.eval q_of_t (time i));
               List.iter
                 (fun p' ->
                    if p' > p && p' < np then begin
                      let j = probes.(p') in
                      let tq = Interp.eval t_of_q (charge i) in
                      let t1 = tq +. (time j -. time i) in
                      note ~exact:(charge j) ~approx:(Interp.eval q_of_t t1)
                    end)
                 [ p + 1; p + (np / 4); p + (np / 2); np - 1 ])
            probes;
          (match t_sat with
           | Some _ -> note ~exact:r.Transient.qfg_final ~approx:q_end
           | None -> ());
          let measured = !worst in
          let bound = (bound_headroom *. measured) +. bound_floor in
          (* certification ran on the half-resolution knots; serve at full
             sample resolution. Halving the PCHIP knot spacing only shrinks
             the interpolation error on this smooth monotone trajectory, so
             the coarse-grid measurement stays an upper bound for the
             served table. *)
          let ft = Array.init m time in
          let fq = Array.init m charge in
          let q_of_t, t_of_q = interp_pair ft fq in
          Ok
            {
              table with
              q_of_t; t_of_q; bound; measured; knots = m;
              (* lint: allow L9 — see above: reported cost, not a result *)
              build_s = Sys.time () -. cpu0;
            }
        end
    end

(* ---------- cached front door ---------- *)

(* Per-domain cache keyed to the device by physical identity, mirroring the
   warm-replay cache in Program_erase: pulse trains live inside one domain
   and parallel sweeps give each worker an independent cache, so serving is
   deterministic regardless of the domain count. *)

type slot =
  | Ready of t
  | Unusable  (* build failed for a non-budget reason; don't re-ask *)

type cache = {
  mutable cache_device : Fgt.t option;
  tables : (int64, slot) Hashtbl.t;
  pending : (int64, int) Hashtbl.t;  (* promotion counters per vgs *)
}

let cache_key : cache Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { cache_device = None; tables = Hashtbl.create 8; pending = Hashtbl.create 8 })

let max_tables = 32

let cache_for device =
  let c = Domain.DLS.get cache_key in
  (match c.cache_device with
   (* lint: allow L9 — conservative same-device identity check on the
      per-domain table cache; a miss only rebuilds identical tables *)
   | Some d when d == device -> ()
   | _ ->
     Hashtbl.reset c.tables;
     Hashtbl.reset c.pending;
     c.cache_device <- Some device);
  c

(* Build only once a (device, vgs) pair has shown it will repeat: a
   Monte-Carlo sweep that touches each device once must not pay a build per
   sample. The counter is per-domain and advances identically whichever
   domain serves the device, so sweep results stay jobs-invariant. *)
let build_after_n = Atomic.make 2

let set_build_after n = Atomic.set build_after_n (max 0 n)
let build_after () = Atomic.get build_after_n

let cached device ~vgs =
  let c = Domain.DLS.get cache_key in
  match c.cache_device with
  | Some d when d == device ->
    (match Hashtbl.find_opt c.tables (Int64.bits_of_float vgs) with
     | Some (Ready t) -> Some t
     | Some Unusable | None -> None)
  | _ -> None

let table_for ?budget ?box device ~vgs =
  let c = cache_for device in
  let key = Int64.bits_of_float vgs in
  match Hashtbl.find_opt c.tables key with
  | Some (Ready t) -> Some t
  | Some Unusable -> None
  | None ->
    let asked = 1 + Option.value ~default:0 (Hashtbl.find_opt c.pending key) in
    if asked <= Atomic.get build_after_n then begin
      Hashtbl.replace c.pending key asked;
      None
    end
    else begin
      Hashtbl.remove c.pending key;
      if Hashtbl.length c.tables >= max_tables then Hashtbl.reset c.tables;
      match build ?budget ?box device ~vgs with
      | Ok t ->
        Hashtbl.replace c.tables key (Ready t);
        Some t
      | Error { Err.kind = Err.Budget_exhausted _; _ } ->
        (* transient starvation: leave the slot empty and retry on a
           later, possibly better-funded, pulse *)
        None
      | Error e ->
        Tel.count ("surrogate/unusable/" ^ Err.label e);
        Hashtbl.replace c.tables key Unusable;
        None
    end

(* Whether [pulse_response] has become a pure function of [qfg] for this
   (device, vgs, duration): either the pulse never enters the box (the
   promotion counters are never touched), or this domain's cache is keyed
   to this device and the (device, vgs) slot is settled — Ready or
   poisoned — so a consult can no longer count, build, or reset anything.
   Until then every consult advances the build-after promotion, and
   skipping one would shift the build onto a different pulse. *)
let response_static ?box device ~vgs ~duration =
  (not (in_box ?box device ~vgs ~duration))
  ||
  let c = Domain.DLS.get cache_key in
  (match c.cache_device with
   (* lint: allow L9 — same conservative identity check as the cache
      itself: a false negative only delays downstream memoization *)
   | Some d when d == device -> Hashtbl.mem c.tables (Int64.bits_of_float vgs)
   | _ -> false)

let pulse_response ?budget ?box device ~vgs ~duration ~qfg =
  let fallback () =
    Tel.count "surrogate/fallback";
    None
  in
  if not (in_box ?box device ~vgs ~duration) then fallback ()
  else
    match table_for ?budget ?box device ~vgs with
    | None -> fallback ()
    | Some t ->
      (match query t ~qfg ~duration with
       | None -> fallback ()
       | Some r ->
         Tel.count "surrogate/hit";
         Some r)
