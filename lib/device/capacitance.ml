module C = Gnrflash_physics.Constants
module U = Gnrflash_units

type t = {
  cfc : float;
  cfs : float;
  cfb : float;
  cfd : float;
}

let cfc_qty t = U.farad t.cfc
let cfs_qty t = U.farad t.cfs
let cfb_qty t = U.farad t.cfb
let cfd_qty t = U.farad t.cfd

let make_q ~cfc ~cfs ~cfb ~cfd =
  if U.(cfc <@ zero) || U.(cfs <@ zero) || U.(cfb <@ zero) || U.(cfd <@ zero) then
    invalid_arg "Capacitance.make: negative component";
  if U.(cfc +@ cfs +@ cfb +@ cfd <=@ zero) then
    invalid_arg "Capacitance.make: zero total";
  {
    cfc = U.to_float cfc;
    cfs = U.to_float cfs;
    cfb = U.to_float cfb;
    cfd = U.to_float cfd;
  }

let make ~cfc ~cfs ~cfb ~cfd =
  make_q ~cfc:(U.farad cfc) ~cfs:(U.farad cfs) ~cfb:(U.farad cfb) ~cfd:(U.farad cfd)

let total_q t = U.(cfc_qty t +@ cfs_qty t +@ cfb_qty t +@ cfd_qty t)
let total t = U.to_float (total_q t)

let gcr t = U.ratio (cfc_qty t) (total_q t)

let of_gcr_q ~gcr ~cfc =
  if gcr <= 0. || gcr > 1. then invalid_arg "Capacitance.of_gcr: gcr out of (0, 1]";
  if U.(cfc <=@ zero) then invalid_arg "Capacitance.of_gcr: cfc <= 0";
  let rest = U.scale ((1. /. gcr) -. 1.) cfc in
  make_q ~cfc ~cfs:(U.scale 0.25 rest) ~cfb:(U.scale 0.5 rest) ~cfd:(U.scale 0.25 rest)

let of_gcr ~gcr ~cfc = of_gcr_q ~gcr ~cfc:(U.farad cfc)

let parallel_plate_q ~eps_r ~area ~thickness =
  if U.(thickness <=@ zero) then invalid_arg "Capacitance.parallel_plate: thickness <= 0";
  (* no [U.(...)] open here: it would shadow the [area] argument with [U.area] *)
  if U.( <=@ ) area U.zero then invalid_arg "Capacitance.parallel_plate: area <= 0";
  (* ε₀·εᵣ·A/t evaluated in the historical factor order so the raw shim is
     bit-identical; the F·m intermediate of (ε₀εᵣ)·A has no name in the
     per-algebra, so this is a sanctioned boundary computation. *)
  U.farad (C.eps0 *. eps_r *. U.to_float area /. U.to_float thickness)

let parallel_plate ~eps_r ~area ~thickness =
  U.to_float
    (parallel_plate_q ~eps_r ~area:(U.square_metre area) ~thickness:(U.metre thickness))

let with_quantum_capacitance_q t ~cq =
  if U.(cq <=@ zero) then invalid_arg "Capacitance.with_quantum_capacitance: cq <= 0";
  (* series combination cfc·cq/(cfc + cq): the F² intermediate has no name
     in the per-algebra — computed raw in the historical order. *)
  let cq = U.to_float cq in
  { t with cfc = t.cfc *. cq /. (t.cfc +. cq) }

let with_quantum_capacitance t ~cq = with_quantum_capacitance_q t ~cq:(U.farad cq)
