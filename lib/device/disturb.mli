(** Program disturb: while one cell on a word line is programmed, inhibited
    neighbours see a reduced bias (V_pass or VGS/2 style) that still drives
    a small FN current. Over many program operations the disturbance
    accumulates into a threshold drift that can flip an erased cell. *)

type config = {
  v_disturb : float;       (** bias seen by the inhibited cell [V] *)
  pulse_width : float;     (** s, per neighbouring program operation *)
}

val half_select : vgs_program:float -> pulse_width:float -> config
(** The classic VGS/2 inhibit scheme. *)

val dvt_after_events :
  ?config:config -> Fgt.t -> qfg0:float -> events:int -> (float, string) result
(** Threshold drift of the victim cell after [events] neighbouring program
    pulses (sequential transient integration; charge carries over between
    events). *)

val qfg_after_events :
  ?config:config -> Fgt.t -> qfg0:float -> events:int -> (float, string) result
(** Stored charge of the victim cell after [events] neighbouring program
    pulses — the feedback quantity an array model writes back into the
    victim so accumulated disturb becomes visible to later reads. *)

val events_to_failure :
  ?config:config -> Fgt.t -> qfg0:float -> dvt_fail:float -> max_events:int ->
  (int option, string) result
(** Number of disturb events before the drift reaches [dvt_fail], or
    [None] within [max_events]. Uses doubling search over event counts. *)
