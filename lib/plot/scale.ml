type kind =
  | Linear
  | Log10

type t = {
  kind : kind;
  lo : float;
  hi : float;
}

let make kind ~lo ~hi =
  if hi < lo then invalid_arg "Scale.make: hi < lo";
  match kind with
  | Linear ->
    if Float.equal hi lo then
      let pad = if Float.equal lo 0. then 1. else abs_float lo *. 0.1 in
      { kind; lo = lo -. pad; hi = hi +. pad }
    else { kind; lo; hi }
  | Log10 ->
    if hi <= 0. then invalid_arg "Scale.make: log scale needs positive data";
    let lo = if lo <= 0. then hi /. 1e12 else lo in
    if Float.equal hi lo then { kind; lo = lo /. 10.; hi = hi *. 10. } else { kind; lo; hi }

let kind t = t.kind
let bounds t = (t.lo, t.hi)

let project t v =
  let u =
    match t.kind with
    | Linear -> (v -. t.lo) /. (t.hi -. t.lo)
    | Log10 ->
      if v <= 0. then 0.
      else (log10 v -. log10 t.lo) /. (log10 t.hi -. log10 t.lo)
  in
  if u < 0. then 0. else if u > 1. then 1. else u

let nice_step raw =
  let mag = 10. ** floor (log10 raw) in
  let norm = raw /. mag in
  let nice = if norm <= 1. then 1. else if norm <= 2. then 2. else if norm <= 5. then 5. else 10. in
  nice *. mag

let ticks ?(target = 6) t =
  match t.kind with
  | Linear ->
    let span = t.hi -. t.lo in
    let step = nice_step (span /. float_of_int (max 2 target)) in
    let first = ceil (t.lo /. step) *. step in
    let rec go acc v =
      if v > t.hi +. (step /. 2.) then List.rev acc else go (v :: acc) (v +. step)
    in
    Array.of_list (go [] first)
  | Log10 ->
    let d0 = floor (log10 t.lo) and d1 = ceil (log10 t.hi) in
    let decades = int_of_float (d1 -. d0) in
    let stride = max 1 (decades / max 1 target) in
    let rec go acc d =
      if d > d1 +. 0.5 then List.rev acc
      else go ((10. ** d) :: acc) (d +. float_of_int stride)
    in
    Array.of_list
      (List.filter (fun v -> v >= t.lo /. 1.001 && v <= t.hi *. 1.001) (go [] d0))

let tick_label t v =
  match t.kind with
  | Log10 -> Printf.sprintf "1e%.0f" (log10 v)
  | Linear ->
    if Float.equal v 0. then "0"
    else if abs_float v >= 1e4 || abs_float v < 1e-3 then Printf.sprintf "%.1e" v
    else if Float.is_integer v then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.3g" v
