type t = {
  title : string;
  xlabel : string;
  ylabel : string;
  xscale : Scale.kind;
  yscale : Scale.kind;
  series : Series.t list;
}

let make ?(xlabel = "x") ?(ylabel = "y") ?(xscale = Scale.Linear)
    ?(yscale = Scale.Linear) ~title series =
  let keep (x, y) =
    (match xscale with Scale.Log10 -> x > 0. | Scale.Linear -> true)
    && (match yscale with Scale.Log10 -> y > 0. | Scale.Linear -> true)
    && Float.is_finite x && Float.is_finite y
  in
  (* per-series filtering of dense sweeps shares the figure's job pool *)
  let series = Gnrflash_parallel.Sweep.map_list (Series.filter keep) series in
  let non_empty = List.exists (fun s -> Array.length s.Series.points > 0) series in
  if not non_empty then invalid_arg "Figure.make: no plottable points";
  { title; xlabel; ylabel; xscale; yscale; series }

let scales t =
  let (xmin, xmax), (ymin, ymax) = Series.extent t.series in
  (Scale.make t.xscale ~lo:xmin ~hi:xmax, Scale.make t.yscale ~lo:ymin ~hi:ymax)
