(** One-dimensional root finding.

    All solvers return [Ok x] with [f x ~ 0], or a typed
    [Gnrflash_resilience.Solver_error.t] when the iteration fails to
    converge or the problem is ill-posed (e.g. no sign change on the
    bracket). Function evaluations are charged against the ambient
    {!Gnrflash_resilience.Budget} (when one is installed) and solvers
    poll it at iteration boundaries, failing with [Budget_exhausted]
    rather than running on. *)

type error = Gnrflash_resilience.Solver_error.t

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  (float, error) result
(** [bisect f a b] finds a root of [f] on the bracket [[a, b]].
    Requires [f a] and [f b] to have opposite signs (an exact zero at an
    endpoint is accepted). [tol] (default [1e-12]) bounds the final bracket
    width relative to the magnitude of the endpoints. Exhausting [max_iter]
    before the tolerance holds is a [No_convergence] error. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  (float, error) result
(** [brent f a b] is Brent's method on the bracket [[a, b]]: inverse
    quadratic interpolation and secant steps guarded by bisection.
    Same bracket requirement as {!bisect}; typically converges
    super-linearly. Exhausting [max_iter] without meeting the tolerance
    returns [No_convergence] carrying the best iterate — never a silently
    unconverged [Ok]. *)

val newton :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  float -> (float, error) result
(** [newton ~f ~df x0] is Newton–Raphson from initial guess [x0]. Fails if
    the derivative vanishes ([Zero_derivative]) or the iteration does not
    converge. *)

val secant :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  (float, error) result
(** [secant f x0 x1] is the secant method from the two initial guesses. *)

val bracket_root :
  ?grow:float -> ?max_iter:int -> (float -> float) -> float -> float ->
  ((float * float), error) result
(** [bracket_root f a b] expands the interval [[a, b]] geometrically
    (factor [grow], default [1.6]) until [f] changes sign across it,
    returning the bracketing pair. *)
