module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fault = Gnrflash_resilience.Fault

type error = Err.t

let default_tol = 1e-12

(* Relative closeness with a tiny absolute floor so roots at (or near) zero
   still converge; the floor must stay far below any physically meaningful
   magnitude (charges of 1e-17 C appear in the device layer). *)
let close tol a b =
  abs_float (b -. a) <= (tol *. max (abs_float a) (abs_float b)) +. 1e-300

(* Every function evaluation is counted, charged against the ambient
   budget, and exposed to the fault injector. *)
let instrument ~solver f x =
  Tel.count "roots/fn_eval";
  Budget.note_evals 1;
  match Fault.outcome () with
  | `Pass -> f x
  | `Nan -> Float.nan
  | `Fail eval -> Err.fail ~solver (Err.Fault_injected { eval })

let bisect ?(tol = default_tol) ?(max_iter = 200) f a b =
  let solver = "Roots.bisect" in
  Err.protect @@ fun () ->
  let f = instrument ~solver f in
  let fa = f a and fb = f b in
  if Float.equal fa 0. then Ok a
  else if Float.equal fb 0. then Ok b
  else if fa *. fb > 0. then begin
    Tel.count "roots/bracket_fail";
    Error (Err.make ~solver (Err.Bracket_failure { lo = a; hi = b; f_lo = fa; f_hi = fb }))
  end
  else begin
    let rec loop a fa b i =
      Tel.count "roots/bisect_iter";
      match Budget.check ~solver () with
      | Error e -> Error e
      | Ok () ->
        let m = 0.5 *. (a +. b) in
        if close tol a b then Ok m
        else if i >= max_iter then
          Error
            (Err.make ~solver
               (Err.No_convergence { iterations = i; best = m; f_best = fa }))
        else
          let fm = f m in
          if Float.is_nan fm then
            Error (Err.make ~solver (Err.Nan_region { at = m }))
          else if Float.equal fm 0. then Ok m
          else if fa *. fm < 0. then loop a fa m (i + 1)
          else loop m fm b (i + 1)
    in
    loop a fa b 0
  end

(* Brent (1973): keep a bracketing pair (a, b) with b the best iterate; try
   inverse quadratic / secant interpolation, fall back to bisection whenever
   the candidate step is not clearly contracting. *)
let brent ?(tol = default_tol) ?(max_iter = 200) f a b =
  let solver = "Roots.brent" in
  Err.protect @@ fun () ->
  let f = instrument ~solver f in
  let fa = f a and fb = f b in
  if Float.equal fa 0. then Ok a
  else if Float.equal fb 0. then Ok b
  else if fa *. fb > 0. then begin
    Tel.count "roots/bracket_fail";
    Error (Err.make ~solver (Err.Bracket_failure { lo = a; hi = b; f_lo = fa; f_hi = fb }))
  end
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in a := !b; b := t;
      let t = !fa in fa := !fb; fb := t
    end;
    let c = ref !a and fc = ref !fa and d = ref 0. and mflag = ref true in
    let result = ref None in
    let i = ref 0 in
    while Option.is_none !result && !i < max_iter do
      incr i;
      Tel.count "roots/brent_iter";
      match Budget.check ~solver () with
      | Error e -> result := Some (Error e)
      | Ok () ->
        if Float.equal !fb 0. || close tol !a !b then result := Some (Ok !b)
        else begin
          let s =
            if (not (Float.equal !fa !fc)) && not (Float.equal !fb !fc) then
              (* inverse quadratic interpolation *)
              (!a *. !fb *. !fc /. ((!fa -. !fb) *. (!fa -. !fc)))
              +. (!b *. !fa *. !fc /. ((!fb -. !fa) *. (!fb -. !fc)))
              +. (!c *. !fa *. !fb /. ((!fc -. !fa) *. (!fc -. !fb)))
            else !b -. (!fb *. (!b -. !a) /. (!fb -. !fa))
          in
          let lo = (3. *. !a +. !b) /. 4. and hi = !b in
          let lo, hi = if lo <= hi then lo, hi else hi, lo in
          let bad =
            s < lo || s > hi
            || (!mflag && abs_float (s -. !b) >= abs_float (!b -. !c) /. 2.)
            || ((not !mflag) && abs_float (s -. !b) >= abs_float (!c -. !d) /. 2.)
          in
          let s = if bad then 0.5 *. (!a +. !b) else s in
          mflag := bad;
          let fs = f s in
          if Float.is_nan fs then
            result := Some (Error (Err.make ~solver (Err.Nan_region { at = s })))
          else begin
            d := !c;
            c := !b; fc := !fb;
            if !fa *. fs < 0. then begin b := s; fb := fs end
            else begin a := s; fa := fs end;
            if abs_float !fa < abs_float !fb then begin
              let t = !a in a := !b; b := t;
              let t = !fa in fa := !fb; fb := t
            end
          end
        end
    done;
    match !result with
    | Some r -> r
    | None ->
      (* Iteration cap hit before [close tol] held: the best iterate is NOT
         a converged root. Silently returning it (the old behavior) let
         unconverged values flow into device solves; fail loudly with the
         best iterate attached so callers/fallbacks can still use it. *)
      Error
        (Err.make ~solver
           (Err.No_convergence { iterations = !i; best = !b; f_best = !fb }))
  end

let newton ?(tol = default_tol) ?(max_iter = 100) ~f ~df x0 =
  let solver = "Roots.newton" in
  Err.protect @@ fun () ->
  let f = instrument ~solver f in
  let df x = Tel.count "roots/fn_eval"; Budget.note_evals 1; df x in
  let rec loop x i =
    if i >= max_iter then
      Error
        (Err.make ~solver
           (Err.No_convergence { iterations = i; best = x; f_best = f x }))
    else begin
      Tel.count "roots/newton_iter";
      match Budget.check ~solver () with
      | Error e -> Error e
      | Ok () ->
        let fx = f x in
        if Float.equal fx 0. then Ok x
        else
          let dfx = df x in
          if Float.equal dfx 0. then Error (Err.make ~solver (Err.Zero_derivative { x }))
          else
            let x' = x -. (fx /. dfx) in
            if Float.is_nan x' || Float.is_nan fx then
              Error (Err.make ~solver (Err.Nan_region { at = x }))
            else if close tol x x' then Ok x'
            else loop x' (i + 1)
    end
  in
  loop x0 0

let secant ?(tol = default_tol) ?(max_iter = 100) f x0 x1 =
  let solver = "Roots.secant" in
  Err.protect @@ fun () ->
  let f = instrument ~solver f in
  let rec loop x0 f0 x1 f1 i =
    Tel.count "roots/secant_iter";
    match Budget.check ~solver () with
    | Error e -> Error e
    | Ok () ->
      if i >= max_iter then
        Error
          (Err.make ~solver
             (Err.No_convergence { iterations = i; best = x1; f_best = f1 }))
      else if Float.equal f1 0. then Ok x1
      else if Float.equal f1 f0 then
        Error (Err.make ~solver (Err.Zero_derivative { x = x1 }))
      else
        let x2 = x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0)) in
        if Float.is_nan x2 then
          Error (Err.make ~solver (Err.Nan_region { at = x1 }))
        else if close tol x1 x2 then Ok x2
        else loop x1 f1 x2 (f x2) (i + 1)
  in
  loop x0 (f x0) x1 (f x1) 0

let bracket_root ?(grow = 1.6) ?(max_iter = 60) f a b =
  let solver = "Roots.bracket_root" in
  Err.protect @@ fun () ->
  let f = instrument ~solver f in
  if Float.equal a b then
    Error (Err.make ~solver (Err.Invalid_input "empty interval"))
  else begin
    let a = ref (min a b) and b = ref (max a b) in
    let fa = ref (f !a) and fb = ref (f !b) in
    let rec loop i =
      match Budget.check ~solver () with
      | Error e -> Error e
      | Ok () ->
        if !fa *. !fb <= 0. then Ok (!a, !b)
        else if i >= max_iter then begin
          Tel.count "roots/bracket_fail";
          Error
            (Err.make ~solver
               (Err.Bracket_failure
                  { lo = !a; hi = !b; f_lo = !fa; f_hi = !fb }))
        end
        else begin
          Tel.count "roots/bracket_expand";
          if abs_float !fa < abs_float !fb then begin
            a := !a -. (grow *. (!b -. !a));
            fa := f !a
          end else begin
            b := !b +. (grow *. (!b -. !a));
            fb := f !b
          end;
          loop (i + 1)
        end
    in
    loop 0
  end
