(* erfc by the rational Chebyshev fit (Numerical Recipes), |error| < 1.2e-7. *)
let erfc x =
  let z = abs_float x in
  let t = 1. /. (1. +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. (t *. (1.00002368
    +. (t *. (0.37409196
    +. (t *. (0.09678418
    +. (t *. (-0.18628806
    +. (t *. (0.27886807
    +. (t *. (-1.13520398
    +. (t *. (1.48851587
    +. (t *. (-0.82215223
    +. (t *. 0.17087277)))))))))))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0. then ans else 2. -. ans

let erf x = 1. -. erfc x

(* Lanczos approximation, g = 7, 9 coefficients. *)
let lanczos_coeffs =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec gamma x =
  if x < 0.5 then
    (* reflection formula *)
    Float.pi /. (sin (Float.pi *. x) *. gamma (1. -. x))
  else begin
    let x = x -. 1. in
    let a = ref lanczos_coeffs.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coeffs.(i) /. (x +. float_of_int i))
    done;
    sqrt (2. *. Float.pi) *. (t ** (x +. 0.5)) *. exp (-.t) *. !a
  end

let ln_gamma x =
  if x <= 0. then invalid_arg "Special.ln_gamma: x <= 0";
  if x < 0.5 then log (abs_float (gamma x))
  else begin
    let x = x -. 1. in
    let a = ref lanczos_coeffs.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coeffs.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

(* ---------- Airy functions ---------- *)

let ai0 = 0.3550280538878172392600631860041831763980
let aip0 = -0.2588194037928067984051835601892039634793
(* Bi(0) = sqrt 3 * Ai(0), Bi'(0) = sqrt 3 * |Ai'(0)| *)

(* Maclaurin series: Ai = c1 f - c2 g, Bi = sqrt3 (c1 f + c2 g), where
   f'' = x f, f(0)=1, f'(0)=0 and g'' = x g, g(0)=0, g'(0)=1. *)
let airy_series x =
  let c1 = ai0 and c2 = -.aip0 in
  let x3 = x *. x *. x in
  (* f and f' *)
  let f = ref 1. and fp = ref 0. in
  let term = ref 1. in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let fk = float_of_int !k in
    let next = !term *. x3 /. (((3. *. fk) +. 2.) *. ((3. *. fk) +. 3.)) in
    incr k;
    term := next;
    f := !f +. next;
    (* d/dx of c_k x^{3k} is 3k c_k x^{3k-1} = next * 3k / x *)
    if not (Float.equal x 0.) then fp := !fp +. (next *. 3. *. float_of_int !k /. x);
    if abs_float next <= 1e-18 *. (abs_float !f +. 1.) || !k > 200 then continue := false
  done;
  (* g and g' *)
  let g = ref x and gp = ref 1. in
  let term = ref x in
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    let fk = float_of_int !k in
    let next = !term *. x3 /. (((3. *. fk) +. 3.) *. ((3. *. fk) +. 4.)) in
    incr k;
    term := next;
    g := !g +. next;
    if not (Float.equal x 0.) then gp := !gp +. (next *. ((3. *. float_of_int !k) +. 1.) /. x);
    if abs_float next <= 1e-18 *. (abs_float !g +. 1.) || !k > 200 then continue := false
  done;
  let sqrt3 = sqrt 3. in
  let ai = (c1 *. !f) -. (c2 *. !g) in
  let aip = (c1 *. !fp) -. (c2 *. !gp) in
  let bi = sqrt3 *. ((c1 *. !f) +. (c2 *. !g)) in
  let bip = sqrt3 *. ((c1 *. !fp) +. (c2 *. !gp)) in
  (ai, aip, bi, bip)

(* Asymptotic coefficients u_k (DLMF 9.7.2) and v_k = (6k+1)/(1-6k) u_k. *)
let asymptotic_uv n =
  let u = Array.make n 0. and v = Array.make n 0. in
  u.(0) <- 1.;
  v.(0) <- 1.;
  for k = 0 to n - 2 do
    let fk = float_of_int k in
    let num = ((3. *. fk) +. 0.5) *. ((3. *. fk) +. 1.5) *. ((3. *. fk) +. 2.5) in
    let den = 54. *. (fk +. 1.) *. (fk +. 0.5) in
    u.(k + 1) <- u.(k) *. num /. den;
    let k1 = float_of_int (k + 1) in
    v.(k + 1) <- u.(k + 1) *. ((6. *. k1) +. 1.) /. (1. -. (6. *. k1))
  done;
  (u, v)

let uv_terms = 10
let u_coef, v_coef = asymptotic_uv uv_terms

(* Sum sum_k sign^k c_k / zeta^k until terms stop shrinking. *)
let asym_sum coefs sign zeta =
  let s = ref 0. and last = ref infinity in
  let zk = ref 1. in
  (try
     for k = 0 to uv_terms - 1 do
       let term = (if k land 1 = 1 then sign else 1.) *. coefs.(k) /. !zk in
       if abs_float term > !last then raise Exit;
       s := !s +. term;
       last := abs_float term;
       zk := !zk *. zeta
     done
   with Exit -> ());
  !s

let airy_asym_pos x =
  let zeta = 2. /. 3. *. (x ** 1.5) in
  let x14 = x ** 0.25 in
  let sp = sqrt Float.pi in
  let ai = exp (-.zeta) /. (2. *. sp *. x14) *. asym_sum u_coef (-1.) zeta in
  let aip = -.x14 *. exp (-.zeta) /. (2. *. sp) *. asym_sum v_coef (-1.) zeta in
  let bi = exp zeta /. (sp *. x14) *. asym_sum u_coef 1. zeta in
  let bip = x14 *. exp zeta /. sp *. asym_sum v_coef 1. zeta in
  (ai, aip, bi, bip)

(* Oscillatory region x < 0 (DLMF 9.7.9-9.7.12), with z = -x. *)
let airy_asym_neg x =
  let z = -.x in
  let zeta = 2. /. 3. *. (z ** 1.5) in
  let z14 = z ** 0.25 in
  let sp = sqrt Float.pi in
  let phase = zeta -. (Float.pi /. 4.) in
  let c = cos phase and s = sin phase in
  (* even/odd sub-sums of u and v with alternating signs *)
  let sub coefs parity =
    let acc = ref 0. and zk = ref (if parity = 0 then 1. else zeta) in
    let last = ref infinity in
    (try
       let k = ref parity in
       let j = ref 0 in
       while !k < uv_terms do
         let term = (if !j land 1 = 1 then -1. else 1.) *. coefs.(!k) /. !zk in
         if abs_float term > !last then raise Exit;
         acc := !acc +. term;
         last := abs_float term;
         zk := !zk *. zeta *. zeta;
         k := !k + 2;
         incr j
       done
     with Exit -> ());
    !acc
  in
  let pu = sub u_coef 0 and qu = sub u_coef 1 in
  let pv = sub v_coef 0 and qv = sub v_coef 1 in
  let ai = ((c *. pu) +. (s *. qu)) /. (sp *. z14) in
  let bi = ((-.s *. pu) +. (c *. qu)) /. (sp *. z14) in
  let aip = z14 /. sp *. ((s *. pv) -. (c *. qv)) in
  let bip = z14 /. sp *. ((c *. pv) +. (s *. qv)) in
  (ai, aip, bi, bip)

let series_cutoff = 5.5

let airy_all x =
  if x > series_cutoff then airy_asym_pos x
  else if x < -.series_cutoff then airy_asym_neg x
  else airy_series x

let airy_ai x = let a, _, _, _ = airy_all x in a
let airy_ai' x = let _, a, _, _ = airy_all x in a
let airy_bi x = let _, _, b, _ = airy_all x in b
let airy_bi' x = let _, _, _, b = airy_all x in b
