(** Initial-value problem solvers for systems [dy/dt = f t y].

    States are [float array]; right-hand sides must not mutate their
    argument. Adaptive solvers fail with a typed
    [Gnrflash_resilience.Solver_error.t] ([Step_underflow], [Max_steps],
    [Nan_region], [Budget_exhausted], ...); RHS evaluations are charged
    against the ambient {!Gnrflash_resilience.Budget} and the budget is
    polled at step boundaries. *)

type error = Gnrflash_resilience.Solver_error.t

type trajectory = {
  times : float array;          (** accepted step times, increasing *)
  states : float array array;   (** [states.(i)] is the state at [times.(i)] *)
}

val euler : f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> steps:int -> trajectory
(** Fixed-step forward Euler ([steps] uniform steps). Mostly useful as a
    baseline in convergence tests. *)

val rk4 : f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> steps:int -> trajectory
(** Classical fixed-step 4th-order Runge–Kutta. *)

val rkf45 :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> unit ->
  (trajectory, error) result
(** Adaptive Runge–Kutta–Fehlberg 4(5) with standard step control.
    [rtol] defaults to [1e-8], [atol] to [1e-12]. Fails if the step size
    underflows [h_min] or [max_steps] (default [200_000]) is exceeded.
    Trial states are checked component-wise for finiteness (NaN {e and}
    infinities) and the step shrinks rather than accepting garbage. *)

type event_result = {
  trajectory : trajectory;   (** trajectory up to and including the event *)
  event_time : float option; (** time at which the event function crossed zero,
                                 or [None] if no crossing occurred before [t1] *)
  event_state : float array option; (** state at the event time *)
}

val rkf45_event :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  f:(float -> float array -> float array) ->
  event:(float -> float array -> float) ->
  t0:float -> y0:float array -> t1:float -> unit ->
  (event_result, error) result
(** Like {!rkf45} but additionally monitors [event t y]: when its sign
    changes across an accepted step — including landing exactly on [0.] —
    the crossing is located by bisection on re-integrated sub-steps (with
    early exit once the time bracket is below a relative tolerance) and
    integration stops there. *)

val solve_scalar :
  ?rtol:float -> ?atol:float ->
  f:(float -> float -> float) -> t0:float -> y0:float -> t1:float -> unit ->
  ((float array * float array), error) result
(** Convenience wrapper of {!rkf45} for scalar equations; returns
    [(times, values)]. *)
