(** Initial-value problem solvers for systems [dy/dt = f t y].

    States are [float array]; right-hand sides must not mutate their
    argument. Adaptive solvers fail with a typed
    [Gnrflash_resilience.Solver_error.t] ([Step_underflow], [Max_steps],
    [Nan_region], [Budget_exhausted], ...); RHS evaluations are charged
    against the ambient {!Gnrflash_resilience.Budget} and the budget is
    polled at step boundaries. *)

type error = Gnrflash_resilience.Solver_error.t

type trajectory = {
  times : float array;          (** accepted step times, increasing *)
  states : float array array;   (** [states.(i)] is the state at [times.(i)] *)
}

val euler : f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> steps:int -> trajectory
(** Fixed-step forward Euler ([steps] uniform steps). Mostly useful as a
    baseline in convergence tests. *)

val rk4 : f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> steps:int -> trajectory
(** Classical fixed-step 4th-order Runge–Kutta. *)

val rkf45 :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> unit ->
  (trajectory, error) result
(** Adaptive embedded Runge–Kutta with standard step control. The stepper
    is the FSAL Dormand–Prince 5(4) pair (an accepted step's last stage is
    reused as the next step's first, so a trial step costs 6 RHS
    evaluations; one extra evaluation seeds the integration and one re-seeds
    after each non-finite trial). The historical [rkf45] name is kept as a
    stable shim — callers and recorded telemetry keys are unchanged.
    [rtol] defaults to [1e-8], [atol] to [1e-12]. Fails if the step size
    underflows [h_min] or [max_steps] (default [200_000]) is exceeded.
    Trial states are checked component-wise for finiteness (NaN {e and}
    infinities) and the step shrinks rather than accepting garbage. *)

val rkf45_dense :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  f:(float -> float array -> float array) ->
  t0:float -> y0:float array -> t1:float -> ts:float array -> unit ->
  (trajectory * float array array, error) result
(** Like {!rkf45} but additionally returns the solution sampled at the
    user-supplied times [ts] (sorted, within [t0, t1]) via the pair's
    native 4th-order dense-output interpolant — no extra RHS evaluations
    are spent on the samples (counted under [ode/dense_eval]). *)

type event_result = {
  trajectory : trajectory;   (** trajectory up to and including the event *)
  event_time : float option; (** time at which the event function crossed zero,
                                 or [None] if no crossing occurred before [t1] *)
  event_state : float array option; (** state at the event time *)
}

val rkf45_event :
  ?rtol:float -> ?atol:float -> ?h0:float -> ?h_min:float -> ?max_steps:int ->
  f:(float -> float array -> float array) ->
  event:(float -> float array -> float) ->
  t0:float -> y0:float array -> t1:float -> unit ->
  (event_result, error) result
(** Like {!rkf45} but additionally monitors [event t y]: when its sign
    changes across an accepted step — including landing exactly on [0.] —
    the crossing is located by bisection on the step's dense-output
    interpolant (pure polynomial evaluation, no RHS work; early exit once
    the time bracket is below a relative tolerance) and integration stops
    there. *)

val solve_scalar :
  ?rtol:float -> ?atol:float ->
  f:(float -> float -> float) -> t0:float -> y0:float -> t1:float -> unit ->
  ((float array * float array), error) result
(** Convenience wrapper of {!rkf45} for scalar equations; returns
    [(times, values)]. *)
