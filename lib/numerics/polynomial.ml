type t = float array

let eval p x =
  let acc = ref 0. in
  for i = Array.length p - 1 downto 0 do
    acc := (!acc *. x) +. p.(i)
  done;
  !acc

let derivative p =
  let n = Array.length p in
  if n <= 1 then [||]
  else Array.init (n - 1) (fun i -> float_of_int (i + 1) *. p.(i + 1))

let integral ?(c0 = 0.) p =
  let n = Array.length p in
  Array.init (n + 1) (fun i -> if i = 0 then c0 else p.(i - 1) /. float_of_int i)

let add p q =
  let n = max (Array.length p) (Array.length q) in
  Array.init n (fun i ->
      (if i < Array.length p then p.(i) else 0.)
      +. (if i < Array.length q then q.(i) else 0.))

let mul p q =
  let np = Array.length p and nq = Array.length q in
  if np = 0 || nq = 0 then [||]
  else begin
    let r = Array.make (np + nq - 1) 0. in
    for i = 0 to np - 1 do
      for j = 0 to nq - 1 do
        r.(i + j) <- r.(i + j) +. (p.(i) *. q.(j))
      done
    done;
    r
  end

let scale a p = Array.map (fun c -> a *. c) p

let degree p =
  let rec go i = if i < 0 then -1 else if abs_float p.(i) > 0. then i else go (i - 1) in
  go (Array.length p - 1)

let fit ~deg xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then Error "Polynomial.fit: length mismatch"
  else if n <= deg then Error "Polynomial.fit: not enough points"
  else begin
    let a = Array.init n (fun i -> Array.init (deg + 1) (fun j -> xs.(i) ** float_of_int j)) in
    Linalg.lstsq a ys
  end

let roots_quadratic a b c =
  if Float.equal a 0. then None
  else begin
    let disc = (b *. b) -. (4. *. a *. c) in
    if disc < 0. then None
    else begin
      let sq = sqrt disc in
      let q = -0.5 *. (b +. (Float.of_int (compare b 0.) |> fun s -> if Float.equal s 0. then 1. else s) *. sq) in
      let r1 = q /. a in
      let r2 = if Float.equal q 0. then 0. else c /. q in
      Some (min r1 r2, max r1 r2)
    end
  end
