let non_empty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let mean xs =
  non_empty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  non_empty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    ss /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let min_max xs =
  non_empty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (xs.(0), xs.(0)) xs

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  non_empty "median" xs;
  let ys = sorted xs in
  let n = Array.length ys in
  if n mod 2 = 1 then ys.(n / 2)
  else 0.5 *. (ys.((n / 2) - 1) +. ys.(n / 2))

let percentile p xs =
  non_empty "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0, 100]";
  let ys = sorted xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

type histogram = {
  edges : float array;
  counts : int array;
}

let histogram ~bins xs =
  non_empty "histogram" xs;
  if bins < 1 then invalid_arg "Stats.histogram: bins < 1";
  let lo, hi = min_max xs in
  let hi = if Float.equal hi lo then lo +. 1. else hi in
  let w = (hi -. lo) /. float_of_int bins in
  let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. w)) in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
       let i = int_of_float ((x -. lo) /. w) in
       let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
       counts.(i) <- counts.(i) + 1)
    xs;
  { edges; counts }

let geometric_mean xs =
  non_empty "geometric_mean" xs;
  let s =
    Array.fold_left
      (fun acc x ->
         if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive sample";
         acc +. log x)
      0. xs
  in
  exp (s /. float_of_int (Array.length xs))

let rms_log_ratio a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Stats.rms_log_ratio: length mismatch";
  non_empty "rms_log_ratio" a;
  let acc = ref 0. in
  for i = 0 to n - 1 do
    if a.(i) <= 0. || b.(i) <= 0. then
      invalid_arg "Stats.rms_log_ratio: non-positive sample";
    let d = log10 (a.(i) /. b.(i)) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)
