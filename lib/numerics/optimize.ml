let phi = (sqrt 5. -. 1.) /. 2.

let golden_section ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let a = ref (min a b) and b = ref (max a b) in
  let x1 = ref (!b -. (phi *. (!b -. !a))) in
  let x2 = ref (!a +. (phi *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let i = ref 0 in
  while !b -. !a > tol *. (1. +. abs_float !a +. abs_float !b) && !i < max_iter do
    incr i;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1; f2 := !f1;
      x1 := !b -. (phi *. (!b -. !a));
      f1 := f !x1
    end else begin
      a := !x1;
      x1 := !x2; f1 := !f2;
      x2 := !a +. (phi *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let xm = 0.5 *. (!a +. !b) in
  (xm, f xm)

let grid_search_1d ~n f a b =
  if n < 2 then invalid_arg "Optimize.grid_search_1d: n < 2";
  let best_x = ref a and best_f = ref (f a) in
  for i = 1 to n - 1 do
    let x = a +. ((b -. a) *. float_of_int i /. float_of_int (n - 1)) in
    let fx = f x in
    if fx < !best_f then begin best_x := x; best_f := fx end
  done;
  (!best_x, !best_f)

let grid_search_2d ~nx ~ny f (x0, x1) (y0, y1) =
  if nx < 2 || ny < 2 then invalid_arg "Optimize.grid_search_2d: n < 2";
  let best = ref ((x0, y0), f x0 y0) in
  for i = 0 to nx - 1 do
    let x = x0 +. ((x1 -. x0) *. float_of_int i /. float_of_int (nx - 1)) in
    for j = 0 to ny - 1 do
      let y = y0 +. ((y1 -. y0) *. float_of_int j /. float_of_int (ny - 1)) in
      let fxy = f x y in
      if fxy < snd !best then best := ((x, y), fxy)
    done
  done;
  !best

let nelder_mead ?(tol = 1e-10) ?(max_iter = 2000) ?(scale = 0.1) f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty point";
  (* simplex of n+1 vertices *)
  let vertex i =
    if i = 0 then Array.copy x0
    else begin
      let v = Array.copy x0 in
      let j = i - 1 in
      let step = if Float.equal v.(j) 0. then scale else scale *. abs_float v.(j) in
      v.(j) <- v.(j) +. step;
      v
    end
  in
  let simplex = Array.init (n + 1) vertex in
  let values = Array.map f simplex in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun i j -> compare values.(i) values.(j)) idx;
    let s = Array.map (fun i -> simplex.(i)) idx in
    let v = Array.map (fun i -> values.(i)) idx in
    Array.blit s 0 simplex 0 (n + 1);
    Array.blit v 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Array.make n 0. in
    for i = 0 to n - 1 do
      (* exclude worst vertex (last after ordering) *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (simplex.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine a wa b wb = Array.init n (fun j -> (wa *. a.(j)) +. (wb *. b.(j))) in
  let iter = ref 0 in
  let converged () =
    abs_float (values.(n) -. values.(0)) <= tol *. (1. +. abs_float values.(0))
  in
  order ();
  while !iter < max_iter && not (converged ()) do
    incr iter;
    let c = centroid () in
    let worst = simplex.(n) in
    let refl = combine c 2. worst (-1.) in
    let f_refl = f refl in
    if f_refl < values.(0) then begin
      (* expansion *)
      let exp_pt = combine c 3. worst (-2.) in
      let f_exp = f exp_pt in
      if f_exp < f_refl then begin simplex.(n) <- exp_pt; values.(n) <- f_exp end
      else begin simplex.(n) <- refl; values.(n) <- f_refl end
    end
    else if f_refl < values.(n - 1) then begin
      simplex.(n) <- refl;
      values.(n) <- f_refl
    end
    else begin
      (* contraction *)
      let contr = combine c 0.5 worst 0.5 in
      let f_contr = f contr in
      if f_contr < values.(n) then begin
        simplex.(n) <- contr;
        values.(n) <- f_contr
      end else begin
        (* shrink towards best *)
        for i = 1 to n do
          simplex.(i) <- combine simplex.(0) 0.5 simplex.(i) 0.5;
          values.(i) <- f simplex.(i)
        done
      end
    end;
    order ()
  done;
  (Array.copy simplex.(0), values.(0))

let minimize_penalized ~penalty f x0 =
  let x, _ = nelder_mead (fun x -> f x +. penalty x) x0 in
  (x, f x)
