module Tel = Gnrflash_telemetry.Telemetry
module Budget = Gnrflash_resilience.Budget

let trapezoid f a b ~n =
  if n < 1 then invalid_arg "Quadrature.trapezoid: n < 1";
  let f x = Tel.count "quad/fn_eval"; Budget.note_evals 1; f x in
  let h = (b -. a) /. float_of_int n in
  let sum = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    sum := !sum +. f (a +. (float_of_int i *. h))
  done;
  !sum *. h

let trapezoid_samples xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Quadrature.trapezoid_samples: length mismatch";
  if n < 2 then invalid_arg "Quadrature.trapezoid_samples: need >= 2 points";
  let sum = ref 0. in
  for i = 0 to n - 2 do
    sum := !sum +. (0.5 *. (ys.(i) +. ys.(i + 1)) *. (xs.(i + 1) -. xs.(i)))
  done;
  !sum

let simpson f a b ~n =
  if n < 1 then invalid_arg "Quadrature.simpson: n < 1";
  let f x = Tel.count "quad/fn_eval"; Budget.note_evals 1; f x in
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (b -. a) /. float_of_int n in
  let sum = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    sum := !sum +. (w *. f (a +. (float_of_int i *. h)))
  done;
  !sum *. h /. 3.

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 40) f a b =
  let f x = Tel.count "quad/fn_eval"; Budget.note_evals 1; f x in
  let simpson3 fa fm fb a b = (b -. a) /. 6. *. (fa +. (4. *. fm) +. fb) in
  let rec go a fa b fb m fm whole tol depth =
    Tel.count "quad/adaptive_interval";
    (* Quadrature has no result channel; an exhausted budget surfaces as a
       Solver_failure exception, converted back to Error by the typed
       entry points above this in the stack. *)
    Budget.check_exn ~solver:"Quadrature.adaptive_simpson" ();
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson3 fa flm fm a m in
    let right = simpson3 fm frm fb m b in
    let delta = left +. right -. whole in
    if depth >= max_depth || abs_float delta <= 15. *. tol then
      left +. right +. (delta /. 15.)
    else
      go a fa m fm lm flm left (tol /. 2.) (depth + 1)
      +. go m fm b fb rm frm right (tol /. 2.) (depth + 1)
  in
  let fa = f a and fb = f b in
  let m = 0.5 *. (a +. b) in
  let fm = f m in
  go a fa b fb m fm (simpson3 fa fm fb a b) tol 0

(* Legendre polynomial value and derivative by the three-term recurrence. *)
let legendre_pd n x =
  let p0 = ref 1. and p1 = ref x in
  if n = 0 then (1., 0.)
  else begin
    for k = 2 to n do
      let fk = float_of_int k in
      let p2 = (((2. *. fk) -. 1.) *. x *. !p1 -. ((fk -. 1.) *. !p0)) /. fk in
      p0 := !p1;
      p1 := p2
    done;
    let d = float_of_int n *. ((x *. !p1) -. !p0) /. ((x *. x) -. 1.) in
    (!p1, d)
  end

(* Domain-local so parallel sweeps never race on the table; each domain
   pays the (tiny) node build once per order instead of taking a lock on
   every quadrature call. *)
let node_cache_key : (int, float array * float array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let gauss_legendre_nodes n =
  if n < 1 then invalid_arg "Quadrature.gauss_legendre_nodes: n < 1";
  let node_cache = Domain.DLS.get node_cache_key in
  match Hashtbl.find_opt node_cache n with
  | Some nw -> Tel.count "quad/gauss_nodes_hit"; nw
  | None ->
    Tel.count "quad/gauss_nodes_built";
    let nodes = Array.make n 0. and weights = Array.make n 0. in
    let m = (n + 1) / 2 in
    for i = 0 to m - 1 do
      (* Chebyshev-based initial guess, then Newton on P_n. *)
      let x = ref (cos (Float.pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))) in
      let continue = ref true in
      let guard = ref 0 in
      while !continue && !guard < 100 do
        incr guard;
        let p, d = legendre_pd n !x in
        let dx = p /. d in
        x := !x -. dx;
        if abs_float dx < 1e-15 then continue := false
      done;
      let _, d = legendre_pd n !x in
      let w = 2. /. ((1. -. (!x *. !x)) *. d *. d) in
      nodes.(i) <- -. !x;
      nodes.(n - 1 - i) <- !x;
      weights.(i) <- w;
      weights.(n - 1 - i) <- w
    done;
    if n mod 2 = 1 then nodes.(n / 2) <- 0.;
    let nw = (nodes, weights) in
    Hashtbl.replace node_cache n nw;
    nw

let gauss_legendre ?(order = 16) f a b =
  Tel.count ~n:order "quad/fn_eval";
  Budget.note_evals order;
  let nodes, weights = gauss_legendre_nodes order in
  let half = 0.5 *. (b -. a) and mid = 0.5 *. (a +. b) in
  let sum = ref 0. in
  for i = 0 to order - 1 do
    sum := !sum +. (weights.(i) *. f (mid +. (half *. nodes.(i))))
  done;
  !sum *. half

let integrate_to_inf ?(tol = 1e-12) ?(decades = 6.) f a =
  let start = max (abs_float a) 1. in
  let total = ref 0. in
  let lo = ref a in
  let hi = ref (a +. start) in
  let k = ref 0 in
  let panels = int_of_float (ceil (decades /. 0.30103)) + 4 in
  let continue = ref true in
  while !continue && !k < panels do
    incr k;
    Tel.count "quad/inf_panel";
    Budget.check_exn ~solver:"Quadrature.integrate_to_inf" ();
    let piece = gauss_legendre ~order:24 f !lo !hi in
    total := !total +. piece;
    if abs_float piece <= tol *. (abs_float !total +. 1e-300) then continue := false
    else begin
      lo := !hi;
      hi := !lo +. ((!hi -. a) *. 1.0) *. 2.
    end
  done;
  !total
