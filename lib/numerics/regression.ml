type fit = {
  slope : float;
  intercept : float;
  r_squared : float;
  slope_stderr : float;
  intercept_stderr : float;
  n : int;
}

let wls ~weights xs ys =
  let n = Array.length xs in
  if Array.length ys <> n || Array.length weights <> n then
    Error "Regression: length mismatch"
  else if n < 2 then Error "Regression: need >= 2 points"
  else begin
    let sw = ref 0. and sx = ref 0. and sy = ref 0. in
    for i = 0 to n - 1 do
      if weights.(i) < 0. then invalid_arg "Regression.wls: negative weight";
      sw := !sw +. weights.(i);
      sx := !sx +. (weights.(i) *. xs.(i));
      sy := !sy +. (weights.(i) *. ys.(i))
    done;
    if !sw <= 0. then Error "Regression: zero total weight"
    else begin
      let xbar = !sx /. !sw and ybar = !sy /. !sw in
      let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
      for i = 0 to n - 1 do
        let dx = xs.(i) -. xbar and dy = ys.(i) -. ybar in
        sxx := !sxx +. (weights.(i) *. dx *. dx);
        sxy := !sxy +. (weights.(i) *. dx *. dy);
        syy := !syy +. (weights.(i) *. dy *. dy)
      done;
      if Float.equal !sxx 0. then Error "Regression: constant abscissae"
      else begin
        let slope = !sxy /. !sxx in
        let intercept = ybar -. (slope *. xbar) in
        let ss_res = ref 0. in
        for i = 0 to n - 1 do
          let r = ys.(i) -. (intercept +. (slope *. xs.(i))) in
          ss_res := !ss_res +. (weights.(i) *. r *. r)
        done;
        let r_squared = if Float.equal !syy 0. then 1. else 1. -. (!ss_res /. !syy) in
        let dof = float_of_int (n - 2) in
        let var = if n > 2 then !ss_res /. dof else 0. in
        let slope_stderr = sqrt (var /. !sxx) in
        let intercept_stderr = sqrt (var *. ((1. /. !sw) +. (xbar *. xbar /. !sxx))) in
        Ok { slope; intercept; r_squared; slope_stderr; intercept_stderr; n }
      end
    end
  end

let ols xs ys = wls ~weights:(Array.make (Array.length xs) 1.) xs ys

let through_origin xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then Error "Regression: length mismatch"
  else if n < 1 then Error "Regression: empty data"
  else begin
    let sxy = ref 0. and sxx = ref 0. in
    for i = 0 to n - 1 do
      sxy := !sxy +. (xs.(i) *. ys.(i));
      sxx := !sxx +. (xs.(i) *. xs.(i))
    done;
    if Float.equal !sxx 0. then Error "Regression: all abscissae zero"
    else Ok (!sxy /. !sxx)
  end
