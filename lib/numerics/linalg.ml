let check_len x y name =
  if Array.length x <> Array.length y then invalid_arg ("Linalg." ^ name ^ ": length mismatch")

let dot x y =
  check_len x y "dot";
  let s = ref 0. in
  Array.iteri (fun i xi -> s := !s +. (xi *. y.(i))) x;
  !s

let norm2 x = sqrt (dot x x)

let scale a x = Array.map (fun xi -> a *. xi) x

let add x y =
  check_len x y "add";
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_len x y "sub";
  Array.mapi (fun i xi -> xi -. y.(i)) x

let mat_vec a x =
  Array.map (fun row -> dot row x) a

let mat_mul a b =
  let n = Array.length a in
  let p = Array.length b in
  if p = 0 then invalid_arg "Linalg.mat_mul: empty";
  let m = Array.length b.(0) in
  Array.init n (fun i ->
      if Array.length a.(i) <> p then invalid_arg "Linalg.mat_mul: dimension mismatch";
      Array.init m (fun j ->
          let s = ref 0. in
          for k = 0 to p - 1 do
            s := !s +. (a.(i).(k) *. b.(k).(j))
          done;
          !s))

let transpose a =
  let n = Array.length a in
  if n = 0 then [||]
  else
    let m = Array.length a.(0) in
    Array.init m (fun j -> Array.init n (fun i -> a.(i).(j)))

let identity n = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.))

let solve a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then Error "Linalg.solve: bad dimensions"
  else begin
    let m = Array.map Array.copy a in
    let v = Array.copy b in
    let err = ref None in
    (try
       for col = 0 to n - 1 do
         (* partial pivoting *)
         let piv = ref col in
         for r = col + 1 to n - 1 do
           if abs_float m.(r).(col) > abs_float m.(!piv).(col) then piv := r
         done;
         if abs_float m.(!piv).(col) < 1e-300 then begin
           err := Some "Linalg.solve: singular matrix";
           raise Exit
         end;
         if !piv <> col then begin
           let t = m.(col) in m.(col) <- m.(!piv); m.(!piv) <- t;
           let t = v.(col) in v.(col) <- v.(!piv); v.(!piv) <- t
         end;
         for r = col + 1 to n - 1 do
           let factor = m.(r).(col) /. m.(col).(col) in
           if not (Float.equal factor 0.) then begin
             for c = col to n - 1 do
               m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
             done;
             v.(r) <- v.(r) -. (factor *. v.(col))
           end
         done
       done
     with Exit -> ());
    match !err with
    | Some e -> Error e
    | None ->
      let x = Array.make n 0. in
      for i = n - 1 downto 0 do
        let s = ref v.(i) in
        for j = i + 1 to n - 1 do
          s := !s -. (m.(i).(j) *. x.(j))
        done;
        x.(i) <- !s /. m.(i).(i)
      done;
      Ok x
  end

let solve_tridiag ~sub ~diag ~sup rhs =
  let n = Array.length diag in
  if Array.length sub <> n || Array.length sup <> n || Array.length rhs <> n then
    Error "Linalg.solve_tridiag: bad dimensions"
  else if n = 0 then Error "Linalg.solve_tridiag: empty"
  else begin
    let c' = Array.make n 0. and d' = Array.make n 0. in
    if abs_float diag.(0) < 1e-300 then Error "Linalg.solve_tridiag: zero pivot"
    else begin
      c'.(0) <- sup.(0) /. diag.(0);
      d'.(0) <- rhs.(0) /. diag.(0);
      let singular = ref false in
      for i = 1 to n - 1 do
        let denom = diag.(i) -. (sub.(i) *. c'.(i - 1)) in
        if abs_float denom < 1e-300 then singular := true
        else begin
          c'.(i) <- sup.(i) /. denom;
          d'.(i) <- (rhs.(i) -. (sub.(i) *. d'.(i - 1))) /. denom
        end
      done;
      if !singular then Error "Linalg.solve_tridiag: zero pivot"
      else begin
        let x = Array.make n 0. in
        x.(n - 1) <- d'.(n - 1);
        for i = n - 2 downto 0 do
          x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
        done;
        Ok x
      end
    end
  end

let lstsq a b =
  let at = transpose a in
  let ata = mat_mul at a in
  let atb = mat_vec at b in
  solve ata atb

type cmat2 = {
  a : Complex.t; b : Complex.t;
  c : Complex.t; d : Complex.t;
}

let cmat2_mul m1 m2 =
  let open Complex in
  {
    a = add (mul m1.a m2.a) (mul m1.b m2.c);
    b = add (mul m1.a m2.b) (mul m1.b m2.d);
    c = add (mul m1.c m2.a) (mul m1.d m2.c);
    d = add (mul m1.c m2.b) (mul m1.d m2.d);
  }

let cmat2_id = Complex.{ a = one; b = zero; c = zero; d = one }

let cmat2_det m = Complex.(sub (mul m.a m.d) (mul m.b m.c))
