module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fault = Gnrflash_resilience.Fault

type error = Err.t

type trajectory = {
  times : float array;
  states : float array array;
}

let axpy a x y =
  (* y + a*x, freshly allocated *)
  Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let fixed_step_method step ~f ~t0 ~y0 ~t1 ~steps =
  (* lint: allow L1 — steps < 1 is a misuse of the API (documented
     precondition), not a runtime solve failure; keep Invalid_argument *)
  if steps < 1 then invalid_arg "Ode: steps < 1";
  let f t y = Tel.count "ode/rhs_eval_fixed"; Budget.note_evals 1; f t y in
  Tel.count ~n:steps "ode/fixed_step";
  let h = (t1 -. t0) /. float_of_int steps in
  let times = Array.make (steps + 1) t0 in
  let states = Array.make (steps + 1) (Array.copy y0) in
  let y = ref (Array.copy y0) in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. h) in
    y := step f t !y h;
    times.(i) <- t0 +. (float_of_int i *. h);
    states.(i) <- Array.copy !y
  done;
  times.(steps) <- t1;
  { times; states }

let euler_step f t y h = axpy h (f t y) y

let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.)) (axpy (h /. 2.) k1 y) in
  let k3 = f (t +. (h /. 2.)) (axpy (h /. 2.) k2 y) in
  let k4 = f (t +. h) (axpy h k3 y) in
  Array.mapi
    (fun i yi -> yi +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let euler ~f ~t0 ~y0 ~t1 ~steps = fixed_step_method euler_step ~f ~t0 ~y0 ~t1 ~steps
let rk4 ~f ~t0 ~y0 ~t1 ~steps = fixed_step_method rk4_step ~f ~t0 ~y0 ~t1 ~steps

(* ---------- Dormand–Prince 5(4) with FSAL and dense output ---------- *)

(* Butcher tableau of the DOPRI5 pair (Dormand & Prince 1980, the RKDP
   coefficients of Hairer/Nørsett/Wanner DOPRI5). The 7th stage is evaluated
   at (t+h, y_new) so an accepted step's k7 IS the next step's k1 — "first
   same as last" — making the effective cost 6 RHS evaluations per trial
   plus a single extra evaluation at the start of the integration (and after
   a non-finite trial, whose cached slope may itself be poisoned). *)
let a21 = 1. /. 5.

let a31 = 3. /. 40.
and a32 = 9. /. 40.

let a41 = 44. /. 45.
and a42 = -56. /. 15.
and a43 = 32. /. 9.

let a51 = 19372. /. 6561.
and a52 = -25360. /. 2187.
and a53 = 64448. /. 6561.
and a54 = -212. /. 729.

let a61 = 9017. /. 3168.
and a62 = -355. /. 33.
and a63 = 46732. /. 5247.
and a64 = 49. /. 176.
and a65 = -5103. /. 18656.

(* 5th-order solution weights (b7 = 0; stage 7 only feeds the error
   estimate and the dense output) *)
let b1 = 35. /. 384.
and b3 = 500. /. 1113.
and b4 = 125. /. 192.
and b5 = -2187. /. 6784.
and b6 = 11. /. 84.

(* embedded 4th-order weights *)
let bh1 = 5179. /. 57600.
and bh3 = 7571. /. 16695.
and bh4 = 393. /. 640.
and bh5 = -92097. /. 339200.
and bh6 = 187. /. 2100.
and bh7 = 1. /. 40.

(* dense-output coefficients of the pair's native 4th-order continuous
   extension (Hairer's rcont5 weights) *)
let d1 = -12715105075. /. 11282082432.
and d3 = 87487479700. /. 32700410799.
and d4 = -10690763975. /. 1880347072.
and d5 = 701980252875. /. 199316789632.
and d6 = -1453857185. /. 822651844.
and d7 = 69997945. /. 29380423.

(* One trial step from (t, y) with slope k1 = f t y already in hand.
   Returns the 5th-order solution, the embedded 4th-order solution and the
   remaining stages (k7 last, evaluated at the trial endpoint). *)
let dopri5_stages f t y h k1 =
  let n = Array.length y in
  let y2 = Array.init n (fun i -> y.(i) +. (h *. a21 *. k1.(i))) in
  let k2 = f (t +. (h /. 5.)) y2 in
  let y3 = Array.init n (fun i -> y.(i) +. (h *. ((a31 *. k1.(i)) +. (a32 *. k2.(i))))) in
  let k3 = f (t +. (3. *. h /. 10.)) y3 in
  let y4 =
    Array.init n (fun i ->
        y.(i) +. (h *. ((a41 *. k1.(i)) +. (a42 *. k2.(i)) +. (a43 *. k3.(i)))))
  in
  let k4 = f (t +. (4. *. h /. 5.)) y4 in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((a51 *. k1.(i)) +. (a52 *. k2.(i)) +. (a53 *. k3.(i))
                +. (a54 *. k4.(i)))))
  in
  let k5 = f (t +. (8. *. h /. 9.)) y5 in
  let y6 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((a61 *. k1.(i)) +. (a62 *. k2.(i)) +. (a63 *. k3.(i))
                +. (a64 *. k4.(i)) +. (a65 *. k5.(i)))))
  in
  let k6 = f (t +. h) y6 in
  let y_new =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((b1 *. k1.(i)) +. (b3 *. k3.(i)) +. (b4 *. k4.(i))
                +. (b5 *. k5.(i)) +. (b6 *. k6.(i)))))
  in
  let k7 = f (t +. h) y_new in
  let y_4th =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((bh1 *. k1.(i)) +. (bh3 *. k3.(i)) +. (bh4 *. k4.(i))
                +. (bh5 *. k5.(i)) +. (bh6 *. k6.(i)) +. (bh7 *. k7.(i)))))
  in
  (y_new, y_4th, k2, k3, k4, k5, k6, k7)

(* The continuous extension over one accepted step, evaluated without any
   further RHS work. Coefficients are built lazily so trajectory-only
   integrations never pay for them; each evaluation is counted under
   [ode/dense_eval]. *)
let make_interp ~t_old ~h ~y_old ~y_new ~k1 ~k3 ~k4 ~k5 ~k6 ~k7 =
  let n = Array.length y_old in
  let cont =
    lazy
      (Array.init n (fun i ->
           let ydiff = y_new.(i) -. y_old.(i) in
           let bspl = (h *. k1.(i)) -. ydiff in
           let c4 = ydiff -. (h *. k7.(i)) -. bspl in
           let c5 =
             h
             *. ((d1 *. k1.(i)) +. (d3 *. k3.(i)) +. (d4 *. k4.(i))
                 +. (d5 *. k5.(i)) +. (d6 *. k6.(i)) +. (d7 *. k7.(i)))
           in
           (y_old.(i), ydiff, bspl, c4, c5)))
  in
  fun t ->
    Tel.count "ode/dense_eval";
    let theta = (t -. t_old) /. h in
    Array.map
      (fun (c1, c2, c3, c4, c5) ->
        c1
        +. (theta
            *. (c2 +. ((1. -. theta) *. (c3 +. (theta *. (c4 +. ((1. -. theta) *. c5))))))))
      (Lazy.force cont)

let error_norm ~rtol ~atol y y5 y4 =
  let n = Array.length y in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let sc = atol +. (rtol *. max (abs_float y.(i)) (abs_float y5.(i))) in
    let e = (y5.(i) -. y4.(i)) /. sc in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let all_finite y =
  let ok = ref true in
  for i = 0 to Array.length y - 1 do
    if not (Float.is_finite y.(i)) then ok := false
  done;
  !ok

(* Adaptive driver. [on_step] additionally receives the step's dense-output
   interpolant so event localization (and user-facing dense sampling) can
   refine inside the accepted interval without re-integrating. The solver
   name stays "Ode.rkf45" in typed errors: it is the stable identifier the
   resilience layer and its tests key on. *)
let rkf45_core ?(rtol = 1e-8) ?(atol = 1e-12) ?h0 ?(h_min = 1e-300) ?(max_steps = 200_000)
    ~f ~t0 ~y0 ~t1 ~on_step () =
  let solver = "Ode.rkf45" in
  if t1 <= t0 then
    Error (Err.make ~solver (Err.Invalid_input "t1 <= t0"))
  else begin
    (* Each trial step costs exactly 6 RHS evaluations thanks to FSAL (plus
       one to seed the first step, and one re-seed after every non-finite
       trial); counting at the wrapped callable keeps the bookkeeping honest
       even if the tableau changes. Evaluations are charged to the ambient
       budget and exposed to the fault injector (a NaN fault poisons the
       whole state vector, which exercises the same shrink path as a genuine
       non-finite region). *)
    let n = Array.length y0 in
    let f t y =
      Tel.count "ode/rhs_eval";
      Budget.note_evals 1;
      match Fault.outcome () with
      | `Pass -> f t y
      | `Nan -> Array.make n Float.nan
      | `Fail eval -> Err.fail ~solver (Err.Fault_injected { eval })
    in
    let h = ref (match h0 with Some h -> h | None -> (t1 -. t0) /. 100.) in
    let t = ref t0 and y = ref (Array.copy y0) in
    (* FSAL slope cache: f(!t, !y). Invalidated whenever a trial goes
       non-finite, so a fault-poisoned slope cannot pin the integration in
       the shrink loop forever. *)
    let k1 = ref None in
    let steps = ref 0 in
    let err = ref None in
    let finished = ref false in
    while (not !finished) && Option.is_none !err do
      match Budget.check ~solver () with
      | Error e -> err := Some e
      | Ok () ->
        if !steps > max_steps then
          err := Some (Err.make ~solver (Err.Max_steps { steps = !steps; t = !t }))
        else begin
          incr steps;
          if !t +. !h > t1 then h := t1 -. !t;
          let k1v =
            match !k1 with
            | Some k -> k
            | None ->
              let k = f !t !y in
              k1 := Some k;
              k
          in
          let y5, y4, _k2, k3, k4, k5, k6, k7 = dopri5_stages f !t !y !h k1v in
          let en = error_norm ~rtol ~atol !y y5 y4 in
          (* A per-component finiteness check: a NaN error norm alone would
             miss infinities (and +inf + -inf cancellation in any summed
             test), letting the integrator accept garbage states. *)
          if Float.is_nan en || not (all_finite y5) then begin
            (* the trial step left the region where f is finite: shrink hard *)
            Tel.count "ode/step_nan_shrink";
            k1 := None;
            h := !h /. 10.;
            if !h < h_min then
              err := Some (Err.make ~solver (Err.Nan_region { at = !t }))
          end
          else if en <= 1. then begin
            Tel.count "ode/step_accepted";
            let t_new = !t +. !h in
            let interp =
              make_interp ~t_old:!t ~h:!h ~y_old:!y ~y_new:y5 ~k1:k1v ~k3 ~k4 ~k5
                ~k6 ~k7
            in
            (match on_step ~t_old:!t ~y_old:!y ~t_new ~y_new:y5 ~interp with
             | `Stop -> finished := true
             | `Continue -> ());
            t := t_new;
            y := y5;
            k1 := Some k7;
            if !t >= t1 -. 1e-15 *. (abs_float t1 +. 1.) then finished := true;
            let factor = if Float.equal en 0. then 4. else min 4. (0.9 *. (en ** (-0.2))) in
            h := !h *. factor
          end else begin
            Tel.count "ode/step_rejected";
            let factor = max 0.1 (0.9 *. (en ** (-0.25))) in
            h := !h *. factor;
            if !h < h_min then
              err := Some (Err.make ~solver (Err.Step_underflow { t = !t; h = !h }))
          end
        end
    done;
    match !err with Some e -> Error e | None -> Ok ()
  end

let rkf45 ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 () =
  Err.protect @@ fun () ->
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let on_step ~t_old:_ ~y_old:_ ~t_new ~y_new ~interp:_ =
    times := t_new :: !times;
    states := Array.copy y_new :: !states;
    `Continue
  in
  match rkf45_core ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~on_step () with
  | Error e -> Error e
  | Ok () ->
    Ok
      {
        times = Array.of_list (List.rev !times);
        states = Array.of_list (List.rev !states);
      }

let rkf45_dense ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~ts () =
  Err.protect @@ fun () ->
  let m = Array.length ts in
  for j = 0 to m - 1 do
    if ts.(j) < t0 || ts.(j) > t1 then
      Err.fail ~solver:"Ode.rkf45_dense" (Err.Invalid_input "sample time outside [t0, t1]");
    if j > 0 && ts.(j) < ts.(j - 1) then
      Err.fail ~solver:"Ode.rkf45_dense" (Err.Invalid_input "sample times not sorted")
  done;
  let out = Array.make m [||] in
  let next = ref 0 in
  while !next < m && ts.(!next) <= t0 do
    out.(!next) <- Array.copy y0;
    incr next
  done;
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let on_step ~t_old:_ ~y_old:_ ~t_new ~y_new ~interp =
    while !next < m && ts.(!next) <= t_new do
      out.(!next) <- interp ts.(!next);
      incr next
    done;
    times := t_new :: !times;
    states := Array.copy y_new :: !states;
    `Continue
  in
  match rkf45_core ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~on_step () with
  | Error e -> Error e
  | Ok () ->
    let last = List.hd !states in
    (* times landing in the round-off gap between the last accepted step
       and t1 take the final state *)
    while !next < m do
      out.(!next) <- Array.copy last;
      incr next
    done;
    Ok
      ( {
          times = Array.of_list (List.rev !times);
          states = Array.of_list (List.rev !states);
        },
        out )

type event_result = {
  trajectory : trajectory;
  event_time : float option;
  event_state : float array option;
}

(* Bisection for the event time stops when the bracket is this small
   relative to the step interval — continuing to the fixed 60 iterations
   would churn dense-output evaluations well past double precision. *)
let event_time_rtol = 1e-12

let rkf45_event ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~event ~t0 ~y0 ~t1 () =
  Err.protect @@ fun () ->
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let ev_t = ref None and ev_y = ref None in
  let g0 = ref (event t0 y0) in
  let on_step ~t_old ~y_old:_ ~t_new ~y_new ~interp =
    let g1 = event t_new y_new in
    if Float.equal g1 0. then begin
      (* The event function lands exactly on zero at the accepted step:
         that IS the crossing (the old strict [g0 * g1 < 0.] test skipped
         it, and step functions like the saturation imbalance do return
         exact 0./-1. values). No bisection needed. *)
      Tel.count "ode/event_crossing";
      let y_ev = Array.copy y_new in
      ev_t := Some t_new;
      ev_y := Some y_ev;
      times := t_new :: !times;
      states := y_ev :: !states;
      `Stop
    end
    else if !g0 *. g1 < 0. then begin
      (* Locate the crossing by bisection on the step's dense-output
         interpolant — pure polynomial evaluation, no RHS work (the old
         implementation re-integrated the sub-interval with 16 fixed RK4
         steps per probe). *)
      Tel.count "ode/event_crossing";
      let lo = ref t_old and hi = ref t_new in
      let width_tol =
        event_time_rtol *. (abs_float t_new +. abs_float t_old +. 1e-300)
      in
      let iters = ref 0 in
      while !iters < 60 && !hi -. !lo > width_tol do
        incr iters;
        Tel.count "ode/event_bisect_iter";
        let mid = 0.5 *. (!lo +. !hi) in
        let gm = event mid (interp mid) in
        if !g0 *. gm <= 0. then hi := mid else lo := mid
      done;
      let t_ev = 0.5 *. (!lo +. !hi) in
      let y_ev = if t_ev >= t_new then Array.copy y_new else interp t_ev in
      ev_t := Some t_ev;
      ev_y := Some y_ev;
      times := t_ev :: !times;
      states := y_ev :: !states;
      `Stop
    end else begin
      g0 := g1;
      times := t_new :: !times;
      states := Array.copy y_new :: !states;
      `Continue
    end
  in
  match rkf45_core ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~on_step () with
  | Error e -> Error e
  | Ok () ->
    Ok
      {
        trajectory =
          {
            times = Array.of_list (List.rev !times);
            states = Array.of_list (List.rev !states);
          };
        event_time = !ev_t;
        event_state = !ev_y;
      }

let solve_scalar ?rtol ?atol ~f ~t0 ~y0 ~t1 () =
  let fv t y = [| f t y.(0) |] in
  match rkf45 ?rtol ?atol ~f:fv ~t0 ~y0:[| y0 |] ~t1 () with
  | Error e -> Error e
  | Ok { times; states } -> Ok (times, Array.map (fun s -> s.(0)) states)
