module Tel = Gnrflash_telemetry.Telemetry
module Err = Gnrflash_resilience.Solver_error
module Budget = Gnrflash_resilience.Budget
module Fault = Gnrflash_resilience.Fault

type error = Err.t

type trajectory = {
  times : float array;
  states : float array array;
}

let axpy a x y =
  (* y + a*x, freshly allocated *)
  Array.mapi (fun i yi -> yi +. (a *. x.(i))) y

let fixed_step_method step ~f ~t0 ~y0 ~t1 ~steps =
  (* lint: allow L1 — steps < 1 is a misuse of the API (documented
     precondition), not a runtime solve failure; keep Invalid_argument *)
  if steps < 1 then invalid_arg "Ode: steps < 1";
  let f t y = Tel.count "ode/rhs_eval_fixed"; Budget.note_evals 1; f t y in
  Tel.count ~n:steps "ode/fixed_step";
  let h = (t1 -. t0) /. float_of_int steps in
  let times = Array.make (steps + 1) t0 in
  let states = Array.make (steps + 1) (Array.copy y0) in
  let y = ref (Array.copy y0) in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. h) in
    y := step f t !y h;
    times.(i) <- t0 +. (float_of_int i *. h);
    states.(i) <- Array.copy !y
  done;
  times.(steps) <- t1;
  { times; states }

let euler_step f t y h = axpy h (f t y) y

let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.)) (axpy (h /. 2.) k1 y) in
  let k3 = f (t +. (h /. 2.)) (axpy (h /. 2.) k2 y) in
  let k4 = f (t +. h) (axpy h k3 y) in
  Array.mapi
    (fun i yi -> yi +. (h /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))
    y

let euler ~f ~t0 ~y0 ~t1 ~steps = fixed_step_method euler_step ~f ~t0 ~y0 ~t1 ~steps
let rk4 ~f ~t0 ~y0 ~t1 ~steps = fixed_step_method rk4_step ~f ~t0 ~y0 ~t1 ~steps

(* Runge--Kutta--Fehlberg 4(5) Butcher tableau. *)
let rkf45_step f t y h =
  let n = Array.length y in
  let k1 = f t y in
  let y2 = Array.init n (fun i -> y.(i) +. (h *. k1.(i) /. 4.)) in
  let k2 = f (t +. (h /. 4.)) y2 in
  let y3 = Array.init n (fun i -> y.(i) +. (h *. ((3. /. 32. *. k1.(i)) +. (9. /. 32. *. k2.(i))))) in
  let k3 = f (t +. (3. *. h /. 8.)) y3 in
  let y4 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((1932. /. 2197. *. k1.(i)) -. (7200. /. 2197. *. k2.(i))
                +. (7296. /. 2197. *. k3.(i)))))
  in
  let k4 = f (t +. (12. *. h /. 13.)) y4 in
  let y5 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((439. /. 216. *. k1.(i)) -. (8. *. k2.(i)) +. (3680. /. 513. *. k3.(i))
                -. (845. /. 4104. *. k4.(i)))))
  in
  let k5 = f (t +. h) y5 in
  let y6 =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((-8. /. 27. *. k1.(i)) +. (2. *. k2.(i)) -. (3544. /. 2565. *. k3.(i))
                +. (1859. /. 4104. *. k4.(i)) -. (11. /. 40. *. k5.(i)))))
  in
  let k6 = f (t +. (h /. 2.)) y6 in
  let y4th =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((25. /. 216. *. k1.(i)) +. (1408. /. 2565. *. k3.(i))
                +. (2197. /. 4104. *. k4.(i)) -. (k5.(i) /. 5.))))
  in
  let y5th =
    Array.init n (fun i ->
        y.(i)
        +. (h
            *. ((16. /. 135. *. k1.(i)) +. (6656. /. 12825. *. k3.(i))
                +. (28561. /. 56430. *. k4.(i)) -. (9. /. 50. *. k5.(i))
                +. (2. /. 55. *. k6.(i)))))
  in
  (y5th, y4th)

let error_norm ~rtol ~atol y y5 y4 =
  let n = Array.length y in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let sc = atol +. (rtol *. max (abs_float y.(i)) (abs_float y5.(i))) in
    let e = (y5.(i) -. y4.(i)) /. sc in
    acc := !acc +. (e *. e)
  done;
  sqrt (!acc /. float_of_int n)

let all_finite y =
  let ok = ref true in
  for i = 0 to Array.length y - 1 do
    if not (Float.is_finite y.(i)) then ok := false
  done;
  !ok

let rkf45_core ?(rtol = 1e-8) ?(atol = 1e-12) ?h0 ?(h_min = 1e-300) ?(max_steps = 200_000)
    ~f ~t0 ~y0 ~t1 ~on_step () =
  let solver = "Ode.rkf45" in
  if t1 <= t0 then
    Error (Err.make ~solver (Err.Invalid_input "t1 <= t0"))
  else begin
    (* Each rkf45_step trial costs exactly 6 RHS evaluations; counting at the
       wrapped callable keeps the bookkeeping honest even if the tableau
       changes. Evaluations are charged to the ambient budget and exposed to
       the fault injector (a NaN fault poisons the whole state vector, which
       exercises the same shrink path as a genuine non-finite region). *)
    let n = Array.length y0 in
    let f t y =
      Tel.count "ode/rhs_eval";
      Budget.note_evals 1;
      match Fault.outcome () with
      | `Pass -> f t y
      | `Nan -> Array.make n Float.nan
      | `Fail eval -> Err.fail ~solver (Err.Fault_injected { eval })
    in
    let h = ref (match h0 with Some h -> h | None -> (t1 -. t0) /. 100.) in
    let t = ref t0 and y = ref (Array.copy y0) in
    let steps = ref 0 in
    let err = ref None in
    let finished = ref false in
    while (not !finished) && !err = None do
      match Budget.check ~solver () with
      | Error e -> err := Some e
      | Ok () ->
        if !steps > max_steps then
          err := Some (Err.make ~solver (Err.Max_steps { steps = !steps; t = !t }))
        else begin
          incr steps;
          if !t +. !h > t1 then h := t1 -. !t;
          let y5, y4 = rkf45_step f !t !y !h in
          let en = error_norm ~rtol ~atol !y y5 y4 in
          (* A per-component finiteness check: a NaN error norm alone would
             miss infinities (and +inf + -inf cancellation in any summed
             test), letting the integrator accept garbage states. *)
          if Float.is_nan en || not (all_finite y5) then begin
            (* the trial step left the region where f is finite: shrink hard *)
            Tel.count "ode/step_nan_shrink";
            h := !h /. 10.;
            if !h < h_min then
              err := Some (Err.make ~solver (Err.Nan_region { at = !t }))
          end
          else if en <= 1. then begin
            Tel.count "ode/step_accepted";
            let t_new = !t +. !h in
            (match on_step ~t_old:!t ~y_old:!y ~t_new ~y_new:y5 with
             | `Stop -> finished := true
             | `Continue -> ());
            t := t_new;
            y := y5;
            if !t >= t1 -. 1e-15 *. (abs_float t1 +. 1.) then finished := true;
            let factor = if Float.equal en 0. then 4. else min 4. (0.9 *. (en ** (-0.2))) in
            h := !h *. factor
          end else begin
            Tel.count "ode/step_rejected";
            let factor = max 0.1 (0.9 *. (en ** (-0.25))) in
            h := !h *. factor;
            if !h < h_min then
              err := Some (Err.make ~solver (Err.Step_underflow { t = !t; h = !h }))
          end
        end
    done;
    match !err with Some e -> Error e | None -> Ok ()
  end

let rkf45 ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 () =
  Err.protect @@ fun () ->
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let on_step ~t_old:_ ~y_old:_ ~t_new ~y_new =
    times := t_new :: !times;
    states := Array.copy y_new :: !states;
    `Continue
  in
  match rkf45_core ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~on_step () with
  | Error e -> Error e
  | Ok () ->
    Ok
      {
        times = Array.of_list (List.rev !times);
        states = Array.of_list (List.rev !states);
      }

type event_result = {
  trajectory : trajectory;
  event_time : float option;
  event_state : float array option;
}

(* Bisection for the event time stops when the bracket is this small
   relative to the step interval — continuing to the fixed 60 iterations
   would re-run 16-step RK4 integrations well past double precision. *)
let event_time_rtol = 1e-12

let rkf45_event ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~event ~t0 ~y0 ~t1 () =
  Err.protect @@ fun () ->
  let times = ref [ t0 ] and states = ref [ Array.copy y0 ] in
  let ev_t = ref None and ev_y = ref None in
  let g0 = ref (event t0 y0) in
  let on_step ~t_old ~y_old ~t_new ~y_new =
    let g1 = event t_new y_new in
    if Float.equal g1 0. then begin
      (* The event function lands exactly on zero at the accepted step:
         that IS the crossing (the old strict [g0 * g1 < 0.] test skipped
         it, and step functions like the saturation imbalance do return
         exact 0./-1. values). No bisection needed. *)
      Tel.count "ode/event_crossing";
      let y_ev = Array.copy y_new in
      ev_t := Some t_new;
      ev_y := Some y_ev;
      times := t_new :: !times;
      states := y_ev :: !states;
      `Stop
    end
    else if !g0 *. g1 < 0. then begin
      (* Locate the crossing by bisection, re-integrating the sub-interval
         with fixed RK4 steps from the accepted left state. *)
      let locate t =
        if t <= t_old then Array.copy y_old
        else (rk4 ~f ~t0:t_old ~y0:y_old ~t1:t ~steps:16).states |> fun s ->
          s.(Array.length s - 1)
      in
      Tel.count "ode/event_crossing";
      let lo = ref t_old and hi = ref t_new in
      let width_tol =
        event_time_rtol *. (abs_float t_new +. abs_float t_old +. 1e-300)
      in
      let iters = ref 0 in
      while !iters < 60 && !hi -. !lo > width_tol do
        incr iters;
        Tel.count "ode/event_bisect_iter";
        let mid = 0.5 *. (!lo +. !hi) in
        let gm = event mid (locate mid) in
        if !g0 *. gm <= 0. then hi := mid else lo := mid
      done;
      let t_ev = 0.5 *. (!lo +. !hi) in
      let y_ev = locate t_ev in
      ev_t := Some t_ev;
      ev_y := Some y_ev;
      times := t_ev :: !times;
      states := y_ev :: !states;
      `Stop
    end else begin
      g0 := g1;
      times := t_new :: !times;
      states := Array.copy y_new :: !states;
      `Continue
    end
  in
  match rkf45_core ?rtol ?atol ?h0 ?h_min ?max_steps ~f ~t0 ~y0 ~t1 ~on_step () with
  | Error e -> Error e
  | Ok () ->
    Ok
      {
        trajectory =
          {
            times = Array.of_list (List.rev !times);
            states = Array.of_list (List.rev !states);
          };
        event_time = !ev_t;
        event_state = !ev_y;
      }

let solve_scalar ?rtol ?atol ~f ~t0 ~y0 ~t1 () =
  let fv t y = [| f t y.(0) |] in
  match rkf45 ?rtol ?atol ~f:fv ~t0 ~y0:[| y0 |] ~t1 () with
  | Error e -> Error e
  | Ok { times; states } -> Ok (times, Array.map (fun s -> s.(0)) states)
