(* gnrflash command-line interface: regenerate the paper's figures and run
   the extension experiments from the shell. *)

open Cmdliner

let out_formats = [ ("ascii", `Ascii); ("svg", `Svg); ("csv", `Csv) ]

let format_arg =
  let doc = "Output format: ascii (terminal), svg, or csv." in
  Arg.(value & opt (enum out_formats) `Ascii & info [ "format"; "f" ] ~doc)

let out_dir_arg =
  let doc = "Directory for svg/csv output files." in
  Arg.(value & opt string "figures" & info [ "out"; "o" ] ~doc)

(* ---- domain-parallel sweeps ---- *)

let jobs_arg =
  let doc =
    "Domain pool size for the parameter sweeps (figure grids, Monte-Carlo \
     ensembles). 1 runs the plain serial path; output is bit-identical for \
     every $(docv)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Fork $(docv) worker processes for the sweep (multi-process tier on \
     top of --jobs). 1 stays in-process; output is bit-identical for \
     every $(docv)."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"S" ~doc)

let check_shards shards =
  if shards < 1 then begin
    prerr_endline "gnrflash: --shards must be >= 1";
    exit 2
  end

let with_jobs jobs f =
  if jobs < 1 then begin
    prerr_endline "gnrflash: --jobs must be >= 1";
    exit 2
  end;
  Gnrflash.Sweep.set_default_jobs jobs;
  f ()

(* ---- solver telemetry ---- *)

module Telemetry = Gnrflash.Telemetry

let stats_arg =
  let doc =
    "Collect solver telemetry (ODE steps, RHS/root-finder evaluations, \
     lookup-table hits, span timings) and print a snapshot after the run; \
     $(docv) is 'text' or 'json'."
  in
  Arg.(value
       & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
       & info [ "stats" ] ~docv:"FORMAT" ~doc)

(* ---- solver budgets ---- *)

module Resilience = Gnrflash.Resilience

let budget_ms_arg =
  let doc =
    "Wall-clock budget for the solver work, in milliseconds. When the \
     budget runs out the solvers stop cooperatively and report a typed \
     budget_exhausted error (exit code 3) instead of running on."
  in
  Arg.(value & opt (some float) None & info [ "budget-ms" ] ~docv:"MS" ~doc)

(* Install a wall-clock budget (when requested) for the dynamic extent of
   [f]; an exhausted budget escaping as an exception exits with code 3. *)
let with_budget budget_ms f =
  match budget_ms with
  | None -> f ()
  | Some ms ->
    if ms <= 0. then begin
      prerr_endline "gnrflash: --budget-ms must be > 0";
      exit 2
    end;
    (try Resilience.Budget.with_budget (Resilience.Budget.make ~wall_ms:ms ()) f
     with Resilience.Solver_error.Solver_failure e ->
       prerr_endline ("budget exhausted: " ^ Resilience.Solver_error.to_string e);
       exit 3)

(* Run [f] with telemetry enabled when requested, then print the snapshot. *)
let with_stats stats f =
  match stats with
  | None -> f ()
  | Some format ->
    Telemetry.reset ();
    Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        let snap = Telemetry.snapshot () in
        Telemetry.disable ();
        match format with
        | `Text -> print_string (Telemetry.render_text snap)
        | `Json -> print_endline (Telemetry.render_json snap))
      f

let emit ~format ~out_dir ~name fig =
  match format with
  | `Ascii -> Gnrflash_plot.Ascii.print fig
  | `Svg ->
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let path = Filename.concat out_dir (name ^ ".svg") in
    Gnrflash_plot.Svg.save ~path fig;
    Printf.printf "wrote %s\n" path
  | `Csv ->
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let path = Filename.concat out_dir (name ^ ".csv") in
    Gnrflash_plot.Csv.save_figure ~path fig;
    Printf.printf "wrote %s\n" path

(* ---- fig command ---- *)

let fig_ids =
  [ "2"; "4"; "5"; "6"; "7"; "8"; "9"; "models"; "qcap"; "idvg"; "all" ]

let fig_cmd =
  let id_arg =
    let doc =
      "Figure to regenerate: a paper figure (2, 4, 5, 6, 7, 8, 9), an \
       extension figure (models, qcap, idvg), or all."
    in
    Arg.(value & pos 0 (enum (List.map (fun s -> (s, s)) fig_ids)) "all"
         & info [] ~docv:"FIGURE" ~doc)
  in
  let extension_figures () =
    [
      ("ext_models", Gnrflash.Extensions.model_figure ());
      ("ext_qcap", Gnrflash.Extensions.qcap_jv_figure ());
      ("ext_idvg", Gnrflash.Extensions.id_vg_figure ());
    ]
  in
  let run id format out_dir stats jobs =
    with_jobs jobs @@ fun () ->
    with_stats stats @@ fun () ->
    let wanted =
      match id with
      | "all" -> Gnrflash.Figures.all () @ extension_figures ()
      | "models" | "qcap" | "idvg" ->
        List.filter (fun (n, _) -> n = "ext_" ^ id) (extension_figures ())
      | id -> List.filter (fun (n, _) -> n = "fig" ^ id) (Gnrflash.Figures.all ())
    in
    List.iter (fun (name, fig) -> emit ~format ~out_dir ~name fig) wanted
  in
  let doc = "Regenerate a paper or extension figure." in
  Cmd.v (Cmd.info "fig" ~doc)
    Term.(const run $ id_arg $ format_arg $ out_dir_arg $ stats_arg $ jobs_arg)

(* ---- check command ---- *)

let check_cmd =
  let run stats jobs budget_ms =
    with_jobs jobs @@ fun () ->
    with_stats stats @@ fun () ->
    with_budget budget_ms @@ fun () ->
    let checks = Gnrflash.Report.all_checks () in
    print_string (Gnrflash.Report.render checks);
    if List.exists (fun c -> not c.Gnrflash.Report.passed) checks then exit 1
  in
  let doc = "Run the paper-shape validation checks." in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ stats_arg $ jobs_arg $ budget_ms_arg)

(* ---- transient command ---- *)

let transient_cmd =
  let vgs_arg =
    Arg.(value & opt float 15. & info [ "vgs" ] ~doc:"Control-gate bias [V].")
  in
  let duration_arg =
    Arg.(value & opt float 10. & info [ "duration" ] ~doc:"Integration horizon [s].")
  in
  let run vgs duration stats jobs budget_ms =
    with_jobs jobs @@ fun () ->
    with_stats stats @@ fun () ->
    with_budget budget_ms @@ fun () ->
    let t = Gnrflash.Params.device () in
    match Gnrflash_device.Transient.run t ~vgs ~duration with
    | Error e ->
      prerr_endline ("transient failed: " ^ Resilience.Solver_error.to_string e);
      (match e.Resilience.Solver_error.kind with
       | Resilience.Solver_error.Budget_exhausted _ -> exit 3
       | _ -> exit 1)
    | Ok r ->
      Printf.printf "%-12s %-12s %-10s %-12s %-12s\n" "time[s]" "QFG[C]" "VFG[V]"
        "Jin[A/cm2]" "Jout[A/cm2]";
      let samples = r.Gnrflash_device.Transient.samples in
      let n = Array.length samples in
      let stride = max 1 (n / 24) in
      Array.iteri
        (fun i s ->
           if i mod stride = 0 || i = n - 1 then
             Printf.printf "%-12.4e %-12.4e %-10.4f %-12.4e %-12.4e\n"
               s.Gnrflash_device.Transient.time s.Gnrflash_device.Transient.qfg
               s.Gnrflash_device.Transient.vfg
               (s.Gnrflash_device.Transient.j_in /. 1e4)
               (s.Gnrflash_device.Transient.j_out /. 1e4))
        samples;
      (match r.Gnrflash_device.Transient.tsat with
       | Some t -> Printf.printf "tsat = %.4e s\n" t
       | None -> print_endline "no saturation within horizon");
      Printf.printf "final dVT = %.3f V\n" r.Gnrflash_device.Transient.dvt_final;
      (* independent fixed-point cross-check of the ODE endpoint (Jin = Jout
         solved by Brent's method, no integration) *)
      (match Gnrflash_device.Transient.saturation_charge t ~vgs with
       | Ok q_star ->
         Printf.printf "fixed-point QFG (Jin = Jout) = %.4e C\n" q_star
       | Error e ->
         Printf.printf "fixed-point solve failed: %s\n"
           (Resilience.Solver_error.to_string e))
  in
  let doc = "Integrate one program/erase transient and print the trajectory." in
  Cmd.v (Cmd.info "transient" ~doc)
    Term.(const run $ vgs_arg $ duration_arg $ stats_arg $ jobs_arg
          $ budget_ms_arg)

(* ---- retention command ---- *)

let retention_cmd =
  let dvt_arg =
    Arg.(value & opt float 2.0 & info [ "dvt" ] ~doc:"Programmed threshold shift [V].")
  in
  let run dvt format out_dir =
    let fig, loss = Gnrflash.Extensions.retention_curve ~dvt0:dvt () in
    emit ~format ~out_dir ~name:"ext_retention" fig;
    Printf.printf "10-year charge loss: %.3f %%\n" loss
  in
  let doc = "Retention (charge loss vs log time) experiment." in
  Cmd.v (Cmd.info "retention" ~doc)
    Term.(const run $ dvt_arg $ format_arg $ out_dir_arg)

(* ---- the certified pulse surrogate opt-out ---- *)

let no_surrogate_arg =
  let doc =
    "Disable the certified pulse surrogate and force every pulse through \
     the exact ODE solve. By default in-box pulses are served from \
     tabulated trajectories within each table's certified divergence \
     bound (see the surrogate/* telemetry counters under --stats)."
  in
  Arg.(value & flag & info [ "no-surrogate" ] ~doc)

(* ---- endurance command ---- *)

let endurance_cmd =
  let cycles_arg =
    Arg.(value & opt int 10_000 & info [ "cycles" ] ~doc:"P/E cycle budget.")
  in
  let ensemble_arg =
    let doc =
      "Cycle $(docv) variation-perturbed cells (instead of the single-cell \
       curve) and report the survival distribution; honors --jobs and \
       --shards."
    in
    Arg.(value & opt int 1 & info [ "ensemble" ] ~docv:"N" ~doc)
  in
  let run cycles ensemble format out_dir no_surrogate stats jobs shards =
    with_jobs jobs @@ fun () ->
    check_shards shards;
    with_stats stats @@ fun () ->
    let surrogate = not no_surrogate in
    if ensemble < 1 then begin
      prerr_endline "gnrflash: --ensemble must be >= 1";
      exit 2
    end;
    if ensemble = 1 then begin
      (* single-cell cycling is inherently serial; --shards has nothing to
         fan out and is ignored *)
      let fig, survived =
        Gnrflash.Extensions.endurance_curve ~cycles ~surrogate ()
      in
      emit ~format ~out_dir ~name:"ext_endurance" fig;
      Printf.printf "cycles survived: %d / %d\n" survived cycles
    end
    else begin
      let s =
        Gnrflash.Extensions.endurance_ensemble ~cells:ensemble ~cycles
          ~surrogate ~jobs ~shards ()
      in
      Printf.printf "endurance ensemble of %d cells (budget %d cycles):\n"
        s.Gnrflash.Extensions.cells cycles;
      Printf.printf "  survived full budget  %d / %d\n"
        s.Gnrflash.Extensions.survived_all s.Gnrflash.Extensions.cells;
      Printf.printf "  cycles min/median/max %d / %d / %d\n"
        s.Gnrflash.Extensions.cycles_min s.Gnrflash.Extensions.cycles_median
        s.Gnrflash.Extensions.cycles_max
    end
  in
  let doc = "Endurance cycling experiment." in
  Cmd.v (Cmd.info "endurance" ~doc)
    Term.(const run $ cycles_arg $ ensemble_arg $ format_arg $ out_dir_arg
          $ no_surrogate_arg $ stats_arg $ jobs_arg $ shards_arg)

(* ---- pulse command ---- *)

let pulse_cmd =
  let vgs_arg =
    Arg.(value & opt float 15. & info [ "vgs" ] ~doc:"Pulse bias [V].")
  in
  let width_arg =
    Arg.(value & opt float 100e-6 & info [ "width" ] ~doc:"Pulse width [s].")
  in
  let count_arg =
    Arg.(value & opt int 1 & info [ "count"; "n" ] ~doc:"Number of pulses.")
  in
  let qfg0_arg =
    Arg.(value & opt float 0. & info [ "qfg0" ] ~doc:"Initial stored charge [C].")
  in
  let run vgs width count qfg0 no_surrogate stats budget_ms =
    if count < 1 then begin
      prerr_endline "gnrflash: --count must be >= 1";
      exit 2
    end;
    with_stats stats @@ fun () ->
    with_budget budget_ms @@ fun () ->
    let t = Gnrflash.Params.device () in
    let surrogate = not no_surrogate in
    let pulse = { Gnrflash_device.Program_erase.vgs; duration = width } in
    let q = ref qfg0 in
    let last = ref None in
    let t0 = Unix.gettimeofday () in
    (try
       for _ = 1 to count do
         match Gnrflash_device.Program_erase.apply_pulse ~surrogate t ~qfg:!q pulse with
         | Error e ->
           prerr_endline ("pulse failed: " ^ Resilience.Solver_error.to_string e);
           (match e.Resilience.Solver_error.kind with
            | Resilience.Solver_error.Budget_exhausted _ -> exit 3
            | _ -> exit 1)
         | Ok o ->
           q := o.Gnrflash_device.Program_erase.qfg_after;
           last := Some o
       done
     with Resilience.Solver_error.Solver_failure e ->
       prerr_endline ("pulse failed: " ^ Resilience.Solver_error.to_string e);
       exit 3);
    let elapsed = Unix.gettimeofday () -. t0 in
    (match !last with
     | None -> ()
     | Some o ->
       Printf.printf "after %d pulse(s) at %+.2f V x %.3e s (%s):\n" count vgs
         width
         (if surrogate then "surrogate on" else "exact solver");
       Printf.printf "  QFG  = %.6e C\n" o.Gnrflash_device.Program_erase.qfg_after;
       Printf.printf "  dVT  = %.4f V\n" o.Gnrflash_device.Program_erase.dvt_after;
       Printf.printf "  saturated (last pulse) = %b\n"
         o.Gnrflash_device.Program_erase.saturated);
    Printf.printf "  %.3e s total, %.3e s/pulse\n" elapsed
      (elapsed /. float_of_int count)
  in
  let doc =
    "Apply a train of identical bias pulses to the paper device and report \
     the final state and the per-pulse cost (surrogate-served by default; \
     compare against --no-surrogate)."
  in
  Cmd.v (Cmd.info "pulse" ~doc)
    Term.(const run $ vgs_arg $ width_arg $ count_arg $ qfg0_arg
          $ no_surrogate_arg $ stats_arg $ budget_ms_arg)

(* ---- models command (Ext A) ---- *)

let models_cmd =
  let run format out_dir =
    emit ~format ~out_dir ~name:"ext_models" (Gnrflash.Extensions.model_figure ());
    let rows = Gnrflash.Extensions.model_comparison () in
    Printf.printf "%-24s %-14s %-14s\n" "model" "J@10MV/cm" "J@15MV/cm";
    List.iter
      (fun (name, pts) ->
         let at target =
           Array.fold_left
             (fun acc (e, j) -> if abs_float (e -. target) < 0.51 then j else acc)
             nan pts
         in
         Printf.printf "%-24s %-14.4e %-14.4e\n" name (at 10.) (at 15.))
      rows
  in
  let doc = "Compare FN closed form with WKB/TMM/Airy Tsu-Esaki models (Ext A)." in
  Cmd.v (Cmd.info "models" ~doc) Term.(const run $ format_arg $ out_dir_arg)

(* ---- optimize command (Ext B) ---- *)

let optimize_cmd =
  let run () =
    let best, points = Gnrflash.Extensions.optimize_design () in
    Printf.printf "%-6s %-8s %-14s %-14s %-12s %s\n" "GCR" "XTO[nm]" "t_prog[s]"
      "E_peak[MV/cm]" "endurance" "feasible";
    List.iter
      (fun (p : Gnrflash.Extensions.design_point) ->
         Printf.printf "%-6.2f %-8.1f %-14.4e %-14.2f %-12.3e %b\n"
           p.Gnrflash.Extensions.gcr p.Gnrflash.Extensions.xto_nm
           p.Gnrflash.Extensions.program_time
           (p.Gnrflash.Extensions.peak_field /. 1e8)
           p.Gnrflash.Extensions.endurance p.Gnrflash.Extensions.feasible)
      points;
    Printf.printf
      "\nbest: GCR=%.2f XTO=%.1fnm t_prog=%.3e s E=%.1f MV/cm endurance=%.2e\n"
      best.Gnrflash.Extensions.gcr best.Gnrflash.Extensions.xto_nm
      best.Gnrflash.Extensions.program_time
      (best.Gnrflash.Extensions.peak_field /. 1e8)
      best.Gnrflash.Extensions.endurance
  in
  let doc = "Design-space optimization over (GCR, XTO) (Ext B)." in
  Cmd.v (Cmd.info "optimize" ~doc) Term.(const run $ const ())

(* ---- variation command ---- *)

let variation_cmd =
  let n_arg = Arg.(value & opt int 200 & info [ "n" ] ~doc:"Ensemble size.") in
  let seed_arg = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run n seed jobs shards budget_ms =
    with_jobs jobs @@ fun () ->
    check_shards shards;
    with_budget budget_ms @@ fun () ->
    let module V = Gnrflash_device.Variation in
    let base = Gnrflash.Params.device () in
    let samples = V.sample_devices ~seed ~jobs ~shards ~base ~n () in
    let s =
      match V.summarize samples with
      | Ok s -> s
      | Error msg -> prerr_endline msg; exit 1
    in
    Printf.printf "ensemble of %d devices around the paper point:\n" s.V.n;
    if s.V.n_failed > 0 then begin
      Printf.printf "  failed solves   %d (excluded from statistics)\n" s.V.n_failed;
      List.iter
        (fun (cls, count) -> Printf.printf "    %-18s %d\n" cls count)
        s.V.failed_by_class
    end;
    Printf.printf "  t_prog median  %.3e s\n" s.V.t_prog_median;
    Printf.printf "  t_prog p95     %.3e s\n" s.V.t_prog_p95;
    Printf.printf "  p95/p5 spread  %.1fx\n" s.V.t_prog_spread;
    Printf.printf "  dVT sigma      %.3f V (fixed 100 ns pulse)\n" s.V.dvt_sigma;
    Printf.printf "  XTO sensitivity %.2f decades/nm\n" (V.sensitivity_xto base)
  in
  let doc = "Monte-Carlo process-variation analysis." in
  Cmd.v (Cmd.info "variation" ~doc)
    Term.(const run $ n_arg $ seed_arg $ jobs_arg $ shards_arg $ budget_ms_arg)

(* ---- ftl command ---- *)

let ftl_cmd =
  let ops_arg = Arg.(value & opt int 20000 & info [ "ops" ] ~doc:"Write operations.") in
  let run ops =
    let module F = Gnrflash_memory.Ftl in
    let module W = Gnrflash_memory.Workload in
    Printf.printf "%-12s %-8s %-8s %-8s %s\n" "workload" "WA" "gc" "erases" "wear spread";
    List.iter
      (fun (name, pattern) ->
         let ftl = F.create F.default_config in
         let trace =
           W.generate ~seed:2014 pattern ~pages:(F.logical_capacity ftl) ~strings:1
             ~ops ~read_fraction:0.
         in
         match F.run_trace ftl trace with
         | Error e -> Printf.printf "%-12s failed: %s\n" name (F.error_to_string e)
         | Ok ftl ->
           let s = F.stats ftl in
           Printf.printf "%-12s %-8.3f %-8d %-8d %.0f\n" name s.F.write_amplification
             s.F.gc_runs s.F.erases (F.wear_spread ftl))
      [
        ("sequential", W.Sequential);
        ("uniform", W.Uniform);
        ("zipf-0.9", W.Zipf 0.9);
        ("zipf-1.3", W.Zipf 1.3);
      ]
  in
  let doc = "Flash-translation-layer workload study." in
  Cmd.v (Cmd.info "ftl" ~doc) Term.(const run $ ops_arg)

(* ---- serve command ---- *)

let serve_cmd =
  let ops_arg =
    Arg.(value & opt int 20000
         & info [ "ops" ] ~doc:"Total host commands across the fleet.")
  in
  let instances_arg =
    Arg.(value & opt int 8
         & info [ "instances" ] ~doc:"Independent service instances.")
  in
  let seed_arg =
    Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let poll_arg =
    Arg.(value & opt float 0.
         & info [ "poll" ]
             ~doc:"DQ6 status-poll interval in model seconds; 0 uses \
                   RY/BY#-style waits.")
  in
  let run ops instances seed poll jobs shards =
    with_jobs jobs @@ fun () ->
    check_shards shards;
    if ops < 1 || instances < 1 then begin
      prerr_endline "gnrflash: --ops and --instances must be >= 1";
      exit 2
    end;
    let module S = Gnrflash_memory.Service in
    let module W = Gnrflash_memory.Workload in
    let per_instance = max 1 (ops / instances) in
    let config = { S.default_config with S.poll_interval = poll } in
    let t0 = Unix.gettimeofday () in
    let results =
      Gnrflash.Sweep.init ~shards instances (fun i ->
          let seed_i = Gnrflash.Sweep.splitmix ~seed ~index:i in
          let s = S.create ~config (Gnrflash.Params.device ()) in
          let r = S.run_trace ~seed:seed_i ~ops:per_instance s in
          (r, S.latencies s))
    in
    let wall = Unix.gettimeofday () -. t0 in
    let sum f = Array.fold_left (fun acc (r, _) -> acc + f r) 0 results in
    let total_ops = sum (fun r -> r.S.ops) in
    let lost = sum (fun r -> r.S.lost_ops) in
    let mismatches =
      sum (fun r -> r.S.read_mismatches + r.S.verify_mismatches)
    in
    let bad_seq = sum (fun r -> r.S.fsm.Gnrflash_memory.Command_fsm.bad_sequences) in
    let invariant_failures =
      Array.fold_left
        (fun acc (r, _) ->
           match r.S.invariant_error with
           | None -> acc
           | Some e -> (e :: acc))
        [] results
    in
    let trace_digest =
      Array.fold_left
        (fun acc (r, _) -> W.digest_fold acc r.S.trace_digest)
        W.digest_empty results
    in
    let state_digest =
      Array.fold_left
        (fun acc (r, _) -> W.digest_fold acc r.S.state_digest)
        W.digest_empty results
    in
    let lats =
      S.merge_latencies (Array.to_list (Array.map (fun (_, l) -> l) results))
    in
    let pct p =
      if Array.length lats = 0 then 0.
      else
        lats.(int_of_float
                (Float.round (p *. float_of_int (Array.length lats - 1))))
    in
    let model_time =
      Array.fold_left (fun acc (r, _) -> acc +. r.S.model_time) 0. results
    in
    Printf.printf "fleet of %d service instances, %d host commands each:\n"
      instances per_instance;
    Printf.printf "  ops submitted    %d\n" total_ops;
    Printf.printf "  reads            %d (%d mapped)\n"
      (sum (fun r -> r.S.reads)) (sum (fun r -> r.S.read_hits));
    Printf.printf "  writes           %d (+%d rejected Device_full)\n"
      (sum (fun r -> r.S.writes)) (sum (fun r -> r.S.rejected_full));
    Printf.printf "  trims            %d\n" (sum (fun r -> r.S.trims));
    Printf.printf "  lost ops         %d\n" lost;
    Printf.printf "  data mismatches  %d\n" mismatches;
    Printf.printf "  protocol errors  %d\n" bad_seq;
    Printf.printf "  model time       %.4e s (sum over fleet)\n" model_time;
    Printf.printf "  latency p50/p95/p99  %.3e / %.3e / %.3e s (model)\n"
      (pct 0.50) (pct 0.95) (pct 0.99);
    Printf.printf "  wall clock       %.2f s (%.0f ops/s)\n" wall
      (float_of_int total_ops /. Float.max wall 1e-9);
    Printf.printf "  trace digest     0x%016X\n" trace_digest;
    Printf.printf "  state digest     0x%016X\n" state_digest;
    List.iter
      (fun e -> Printf.printf "  INVARIANT VIOLATION: %s\n" e)
      invariant_failures;
    if lost > 0 || mismatches > 0 || bad_seq > 0 || invariant_failures <> []
    then begin
      prerr_endline "gnrflash serve: accounting or integrity gate FAILED";
      exit 1
    end
  in
  let doc =
    "Command-level NOR memory service: run host traffic through the FTL \
     and a behavioral JEDEC command-set device."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ ops_arg $ instances_arg $ seed_arg $ poll_arg
          $ jobs_arg $ shards_arg)

(* ---- energy command ---- *)

let energy_cmd =
  let cells_arg = Arg.(value & opt int 4096 & info [ "cells" ] ~doc:"Page size in cells.") in
  let run cells =
    let rows = Gnrflash_memory.Energy.page_program_comparison ~cells in
    Printf.printf "page of %d cells:\n" cells;
    List.iter (fun (k, v) -> Printf.printf "  %-22s %.4e\n" k v) rows
  in
  let doc = "FN vs channel-hot-electron page-programming energy." in
  Cmd.v (Cmd.info "energy" ~doc) Term.(const run $ cells_arg)

(* ---- ber command ---- *)

let ber_cmd =
  let sigma_arg =
    Arg.(value & opt (some float) None
         & info [ "sigma" ] ~doc:"Threshold placement spread [V]; omit for a sweep.")
  in
  let run sigma =
    let module B = Gnrflash_memory.Ber in
    let show (a : B.analysis) =
      Printf.printf "  sigma=%.3f V: raw BER=%.3e  codeword-fail=%.3e  page-fail=%.3e %s\n"
        a.B.sigma_dvt a.B.raw_ber a.B.codeword_failure a.B.page_failure
        (if a.B.acceptable then "OK" else "FAIL")
    in
    (match sigma with
     | Some s -> show (B.analyze ~sigma_dvt:s ())
     | None -> List.iter show (Gnrflash.Extensions.mlc_error_budget ()));
    Printf.printf "max tolerable sigma for 1e-12 page failure: %.3f V\n"
      (B.max_tolerable_sigma ())
  in
  let doc = "MLC bit-error-rate and ECC budget analysis." in
  Cmd.v (Cmd.info "ber" ~doc) Term.(const run $ sigma_arg)

let main =
  let doc = "MLGNR-CNT floating-gate flash memory model (SOCC 2014 reproduction)" in
  Cmd.group (Cmd.info "gnrflash" ~version:"1.0.0" ~doc)
    [ fig_cmd; check_cmd; transient_cmd; pulse_cmd; retention_cmd;
      endurance_cmd; models_cmd; optimize_cmd; variation_cmd; ftl_cmd;
      serve_cmd; energy_cmd; ber_cmd ]

let () = exit (Cmd.eval main)
